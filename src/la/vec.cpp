#include "la/vec.h"

#include <cmath>

#include "common/error.h"
#include "common/flops.h"
#include "common/parallel.h"

namespace prom::la {
namespace {

/// Elements per parallel chunk. Fixed (thread-count independent): the
/// chunk decomposition — and hence the `dot` reduction tree — is part of
/// the bit-determinism contract (common/parallel.h).
constexpr idx kVecGrain = 8192;

idx length(std::span<const real> x) { return static_cast<idx>(x.size()); }

}  // namespace

void axpy(real a, std::span<const real> x, std::span<real> y) {
  PROM_CHECK(x.size() == y.size());
  common::parallel_for(0, length(x), kVecGrain, [&](idx b, idx e) {
    for (idx i = b; i < e; ++i) y[i] += a * x[i];
  });
  count_flops(2 * static_cast<std::int64_t>(x.size()));
}

void aypx(real a, std::span<const real> x, std::span<real> y) {
  PROM_CHECK(x.size() == y.size());
  common::parallel_for(0, length(x), kVecGrain, [&](idx b, idx e) {
    for (idx i = b; i < e; ++i) y[i] = x[i] + a * y[i];
  });
  count_flops(2 * static_cast<std::int64_t>(x.size()));
}

void waxpby(real a, std::span<const real> x, real b, std::span<const real> y,
            std::span<real> w) {
  PROM_CHECK(x.size() == y.size() && x.size() == w.size());
  common::parallel_for(0, length(x), kVecGrain, [&](idx cb, idx ce) {
    for (idx i = cb; i < ce; ++i) w[i] = a * x[i] + b * y[i];
  });
  count_flops(3 * static_cast<std::int64_t>(x.size()));
}

real dot(std::span<const real> x, std::span<const real> y) {
  PROM_CHECK(x.size() == y.size());
  const real sum =
      common::parallel_reduce(0, length(x), kVecGrain, [&](idx b, idx e) {
        real s = 0;
        for (idx i = b; i < e; ++i) s += x[i] * y[i];
        return s;
      });
  count_flops(2 * static_cast<std::int64_t>(x.size()));
  return sum;
}

real nrm2(std::span<const real> x) { return std::sqrt(dot(x, x)); }

void scale(real a, std::span<real> x) {
  common::parallel_for(0, length(x), kVecGrain, [&](idx b, idx e) {
    for (idx i = b; i < e; ++i) x[i] *= a;
  });
  count_flops(static_cast<std::int64_t>(x.size()));
}

void set_all(std::span<real> x, real value) {
  common::parallel_for(0, length(x), kVecGrain, [&](idx b, idx e) {
    for (idx i = b; i < e; ++i) x[i] = value;
  });
}

void copy(std::span<const real> x, std::span<real> y) {
  PROM_CHECK(x.size() == y.size());
  common::parallel_for(0, length(x), kVecGrain, [&](idx b, idx e) {
    for (idx i = b; i < e; ++i) y[i] = x[i];
  });
}

}  // namespace prom::la
