#include "dla/halo.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/error.h"
#include "common/flops.h"
#include "obs/trace.h"

namespace prom::dla {
namespace {

HaloMode initial_mode() {
  const char* env = std::getenv("PROM_HALO");
  if (env != nullptr && std::strcmp(env, "sync") == 0) return HaloMode::kSync;
  return HaloMode::kOverlap;
}

std::atomic<int>& mode_flag() {
  static std::atomic<int> flag{static_cast<int>(initial_mode())};
  return flag;
}

}  // namespace

void set_halo_mode(HaloMode mode) {
  mode_flag().store(static_cast<int>(mode), std::memory_order_relaxed);
}

HaloMode halo_mode() {
  return static_cast<HaloMode>(mode_flag().load(std::memory_order_relaxed));
}

void HaloPlan::add_send(int peer, std::vector<idx> gather) {
  PROM_CHECK(!gather.empty());
  send_peers_.push_back(peer);
  send_idx_.insert(send_idx_.end(), gather.begin(), gather.end());
  send_off_.push_back(send_idx_.size());
}

void HaloPlan::add_recv(int peer, std::vector<idx> slots) {
  PROM_CHECK(!slots.empty());
  recv_peers_.push_back(peer);
  recv_slots_.insert(recv_slots_.end(), slots.begin(), slots.end());
  recv_off_.push_back(recv_slots_.size());
}

void HaloPlan::finalize(int tag) {
  tag_ = tag;
  send_buf_.resize(send_idx_.size());
  recv_buf_.resize(recv_slots_.size());
  pending_.reserve(std::max(send_peers_.size(), recv_peers_.size()));
}

void HaloPlan::post(parx::Comm& comm, std::span<const real> x_local) const {
  const obs::Span span("halo.post");
  for (std::size_t k = 0; k < send_idx_.size(); ++k) {
    const idx li = send_idx_[k];
    send_buf_[k] = li == kInvalidIdx ? real{0} : x_local[li];
  }
  for (std::size_t p = 0; p < send_peers_.size(); ++p) {
    comm.send<real>(send_peers_[p], tag_,
                    std::span<const real>(send_buf_.data() + send_off_[p],
                                          send_off_[p + 1] - send_off_[p]));
  }
}

void HaloPlan::scatter(std::size_t peer, std::span<real> dst) const {
  for (std::size_t k = recv_off_[peer]; k < recv_off_[peer + 1]; ++k) {
    dst[recv_slots_[k]] = recv_buf_[k];
  }
}

void HaloPlan::finish(parx::Comm& comm, std::span<real> dst) const {
  const obs::Span span("halo.finish");
  pending_.assign(recv_peers_.begin(), recv_peers_.end());
  while (!pending_.empty()) {
    const int src = comm.wait_any(pending_, tag_);
    const std::size_t p = static_cast<std::size_t>(
        std::find(recv_peers_.begin(), recv_peers_.end(), src) -
        recv_peers_.begin());
    comm.recv_into<real>(
        src, tag_,
        std::span<real>(recv_buf_.data() + recv_off_[p],
                        recv_off_[p + 1] - recv_off_[p]));
    scatter(p, dst);
    pending_.erase(std::find(pending_.begin(), pending_.end(), src));
  }
}

void HaloPlan::finish_rank_order(parx::Comm& comm, std::span<real> dst) const {
  const obs::Span span("halo.finish");
  for (std::size_t p = 0; p < recv_peers_.size(); ++p) {
    comm.recv_into<real>(
        recv_peers_[p], tag_,
        std::span<real>(recv_buf_.data() + recv_off_[p],
                        recv_off_[p + 1] - recv_off_[p]));
    scatter(p, dst);
  }
}

void HaloPlan::reverse_post(parx::Comm& comm, std::span<const real> src)
    const {
  const obs::Span span("halo.post");
  for (std::size_t k = 0; k < recv_slots_.size(); ++k) {
    recv_buf_[k] = src[recv_slots_[k]];
  }
  for (std::size_t p = 0; p < recv_peers_.size(); ++p) {
    comm.send<real>(recv_peers_[p], tag_ + 1,
                    std::span<const real>(recv_buf_.data() + recv_off_[p],
                                          recv_off_[p + 1] - recv_off_[p]));
  }
}

void HaloPlan::reverse_accumulate(parx::Comm& comm,
                                  std::span<real> y_local) const {
  const obs::Span span("halo.finish");
  // Stage every reply first (arrival order under kOverlap); the
  // accumulation below runs in registration order either way, so the
  // result is independent of message timing.
  if (halo_mode() == HaloMode::kOverlap) {
    pending_.assign(send_peers_.begin(), send_peers_.end());
    while (!pending_.empty()) {
      const int src = comm.wait_any(pending_, tag_ + 1);
      const std::size_t p = static_cast<std::size_t>(
          std::find(send_peers_.begin(), send_peers_.end(), src) -
          send_peers_.begin());
      comm.recv_into<real>(
          src, tag_ + 1,
          std::span<real>(send_buf_.data() + send_off_[p],
                          send_off_[p + 1] - send_off_[p]));
      pending_.erase(std::find(pending_.begin(), pending_.end(), src));
    }
  } else {
    for (std::size_t p = 0; p < send_peers_.size(); ++p) {
      comm.recv_into<real>(
          send_peers_[p], tag_ + 1,
          std::span<real>(send_buf_.data() + send_off_[p],
                          send_off_[p + 1] - send_off_[p]));
    }
  }
  for (std::size_t k = 0; k < send_idx_.size(); ++k) {
    const idx li = send_idx_[k];
    if (li != kInvalidIdx) y_local[li] += send_buf_[k];
  }
  count_flops(static_cast<std::int64_t>(send_idx_.size()));
}

void HaloPlan::ensure_mv_staging(int k) const {
  if (k <= mv_width_) return;
  send_buf_mv_.resize(send_idx_.size() * static_cast<std::size_t>(k));
  recv_buf_mv_.resize(recv_slots_.size() * static_cast<std::size_t>(k));
  mv_width_ = k;
}

void HaloPlan::post_mv(parx::Comm& comm, const la::MultiVec& x_local) const {
  const obs::Span span("halo.post");
  const int k = x_local.cols();
  ensure_mv_staging(k);
  for (std::size_t p = 0; p < send_peers_.size(); ++p) {
    const std::size_t c0 = send_off_[p];
    const std::size_t cnt = send_off_[p + 1] - c0;
    real* seg = send_buf_mv_.data() + c0 * k;
    for (int j = 0; j < k; ++j) {
      const real* xj = x_local.col_data(j);
      real* out = seg + static_cast<std::size_t>(j) * cnt;
      for (std::size_t t = 0; t < cnt; ++t) {
        const idx li = send_idx_[c0 + t];
        out[t] = li == kInvalidIdx ? real{0} : xj[li];
      }
    }
    comm.send<real>(send_peers_[p], tag_,
                    std::span<const real>(seg, cnt * k));
  }
}

void HaloPlan::scatter_mv(std::size_t peer, la::MultiVec& dst) const {
  const int k = dst.cols();
  const std::size_t c0 = recv_off_[peer];
  const std::size_t cnt = recv_off_[peer + 1] - c0;
  const real* seg = recv_buf_mv_.data() + c0 * k;
  for (int j = 0; j < k; ++j) {
    real* dj = dst.col_data(j);
    const real* in = seg + static_cast<std::size_t>(j) * cnt;
    for (std::size_t t = 0; t < cnt; ++t) dj[recv_slots_[c0 + t]] = in[t];
  }
}

void HaloPlan::finish_mv(parx::Comm& comm, la::MultiVec& dst) const {
  const obs::Span span("halo.finish");
  const int k = dst.cols();
  ensure_mv_staging(k);
  pending_.assign(recv_peers_.begin(), recv_peers_.end());
  while (!pending_.empty()) {
    const int src = comm.wait_any(pending_, tag_);
    const std::size_t p = static_cast<std::size_t>(
        std::find(recv_peers_.begin(), recv_peers_.end(), src) -
        recv_peers_.begin());
    const std::size_t cnt = recv_off_[p + 1] - recv_off_[p];
    comm.recv_into<real>(
        src, tag_,
        std::span<real>(recv_buf_mv_.data() + recv_off_[p] * k, cnt * k));
    scatter_mv(p, dst);
    pending_.erase(std::find(pending_.begin(), pending_.end(), src));
  }
}

void HaloPlan::finish_rank_order_mv(parx::Comm& comm,
                                    la::MultiVec& dst) const {
  const obs::Span span("halo.finish");
  const int k = dst.cols();
  ensure_mv_staging(k);
  for (std::size_t p = 0; p < recv_peers_.size(); ++p) {
    const std::size_t cnt = recv_off_[p + 1] - recv_off_[p];
    comm.recv_into<real>(
        recv_peers_[p], tag_,
        std::span<real>(recv_buf_mv_.data() + recv_off_[p] * k, cnt * k));
    scatter_mv(p, dst);
  }
}

void HaloPlan::reverse_post_mv(parx::Comm& comm,
                               const la::MultiVec& src) const {
  const obs::Span span("halo.post");
  const int k = src.cols();
  ensure_mv_staging(k);
  for (std::size_t p = 0; p < recv_peers_.size(); ++p) {
    const std::size_t c0 = recv_off_[p];
    const std::size_t cnt = recv_off_[p + 1] - c0;
    real* seg = recv_buf_mv_.data() + c0 * k;
    for (int j = 0; j < k; ++j) {
      const real* sj = src.col_data(j);
      real* out = seg + static_cast<std::size_t>(j) * cnt;
      for (std::size_t t = 0; t < cnt; ++t) out[t] = sj[recv_slots_[c0 + t]];
    }
    comm.send<real>(recv_peers_[p], tag_ + 1,
                    std::span<const real>(seg, cnt * k));
  }
}

void HaloPlan::reverse_accumulate_mv(parx::Comm& comm,
                                     la::MultiVec& y_local) const {
  const obs::Span span("halo.finish");
  const int k = y_local.cols();
  ensure_mv_staging(k);
  if (halo_mode() == HaloMode::kOverlap) {
    pending_.assign(send_peers_.begin(), send_peers_.end());
    while (!pending_.empty()) {
      const int src = comm.wait_any(pending_, tag_ + 1);
      const std::size_t p = static_cast<std::size_t>(
          std::find(send_peers_.begin(), send_peers_.end(), src) -
          send_peers_.begin());
      const std::size_t cnt = send_off_[p + 1] - send_off_[p];
      comm.recv_into<real>(
          src, tag_ + 1,
          std::span<real>(send_buf_mv_.data() + send_off_[p] * k, cnt * k));
      pending_.erase(std::find(pending_.begin(), pending_.end(), src));
    }
  } else {
    for (std::size_t p = 0; p < send_peers_.size(); ++p) {
      const std::size_t cnt = send_off_[p + 1] - send_off_[p];
      comm.recv_into<real>(
          send_peers_[p], tag_ + 1,
          std::span<real>(send_buf_mv_.data() + send_off_[p] * k, cnt * k));
    }
  }
  // Per column, accumulate in the scalar path's flattened order (peers in
  // registration order, entries ascending within each peer).
  for (int j = 0; j < k; ++j) {
    real* yj = y_local.col_data(j);
    for (std::size_t p = 0; p < send_peers_.size(); ++p) {
      const std::size_t c0 = send_off_[p];
      const std::size_t cnt = send_off_[p + 1] - c0;
      const real* in =
          send_buf_mv_.data() + c0 * k + static_cast<std::size_t>(j) * cnt;
      for (std::size_t t = 0; t < cnt; ++t) {
        const idx li = send_idx_[c0 + t];
        if (li != kInvalidIdx) yj[li] += in[t];
      }
    }
  }
  count_flops(static_cast<std::int64_t>(send_idx_.size()) * k);
}

}  // namespace prom::dla
