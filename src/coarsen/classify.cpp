#include "coarsen/classify.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "common/error.h"

namespace prom::coarsen {

bool Classification::share_face(idx u, idx v) const {
  const auto fu = faces_of(u);
  const auto fv = faces_of(v);
  // Both lists are sorted; merge-scan.
  std::size_t i = 0, j = 0;
  while (i < fu.size() && j < fv.size()) {
    if (fu[i] == fv[j]) return true;
    if (fu[i] < fv[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

std::array<idx, 4> Classification::type_histogram() const {
  std::array<idx, 4> h{0, 0, 0, 0};
  for (VertexType t : type) h[static_cast<int>(t)]++;
  return h;
}

std::vector<idx> Classification::ranks() const {
  std::vector<idx> r(type.size());
  for (std::size_t v = 0; v < type.size(); ++v) {
    r[v] = static_cast<idx>(type[v]);
  }
  return r;
}

Classification classify_vertices(idx num_vertices,
                                 std::span<const mesh::Facet> facets,
                                 const FaceIdResult& faces) {
  PROM_CHECK(faces.face_id.size() == facets.size());

  // Distinct (face, material) pairs per vertex.
  std::vector<std::set<std::pair<idx, idx>>> vert_faces(
      static_cast<std::size_t>(num_vertices));
  for (std::size_t f = 0; f < facets.size(); ++f) {
    for (idx v : facets[f].vertices()) {
      vert_faces[v].insert({faces.face_id[f], facets[f].material});
    }
  }

  Classification cls;
  cls.type.assign(static_cast<std::size_t>(num_vertices),
                  VertexType::kInterior);
  cls.vface_ptr.assign(static_cast<std::size_t>(num_vertices) + 1, 0);

  for (idx v = 0; v < num_vertices; ++v) {
    const auto& fs = vert_faces[v];
    if (fs.empty()) continue;
    // Faces per material; the vertex type is driven by the most featured
    // side so a flat interface is "surface" even though it has two sides.
    std::map<idx, idx> per_material;
    for (const auto& [face, material] : fs) per_material[material]++;
    idx worst = 0;
    for (const auto& [material, count] : per_material) {
      worst = std::max(worst, count);
    }
    cls.type[v] = worst == 1 ? VertexType::kSurface
                  : worst == 2 ? VertexType::kEdge
                               : VertexType::kCorner;
  }

  // CSR of distinct face ids per vertex (material-agnostic: the feature
  // heuristic only asks "do u and v share a face?").
  for (idx v = 0; v < num_vertices; ++v) {
    std::set<idx> distinct;
    for (const auto& [face, material] : vert_faces[v]) distinct.insert(face);
    cls.vface_ptr[v + 1] =
        cls.vface_ptr[v] + static_cast<nnz_t>(distinct.size());
    cls.vface.insert(cls.vface.end(), distinct.begin(), distinct.end());
  }
  return cls;
}

Classification classify_mesh(const mesh::Mesh& mesh,
                             const FaceIdOptions& opts) {
  const std::vector<mesh::Facet> facets = mesh::boundary_facets(mesh);
  const graph::Graph adj = mesh::facet_adjacency(facets);
  const FaceIdResult faces = identify_faces(facets, adj, opts);
  return classify_vertices(mesh.num_vertices(), facets, faces);
}

}  // namespace prom::coarsen
