// Matrix-setup rank sweep: the distributed Galerkin setup (Epimetheus,
// dla::DistHierarchy::build) on a fixed box problem at 1/2/4/8 virtual
// ranks. Reports wall time, the max-over-ranks flops spent in the R A R^T
// triple products (the quantity that must shrink as ranks grow now that
// setup is row-distributed), and the setup-phase communication volume.
// Emits BENCH_setup.json in the working directory so the perf trajectory
// tracks setup, not just solve kernels.
//
// Environment: PROM_BENCH_FULL=1 enlarges the problem.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

#include "app/driver.h"
#include "common/timer.h"
#include "dla/dist_mg.h"
#include "fem/assembly.h"
#include "mg/hierarchy.h"
#include "partition/rcb.h"
#include "parx/runtime.h"

using namespace prom;

int main() {
  const bool full = std::getenv("PROM_BENCH_FULL") != nullptr;
  const idx n = full ? 24 : 14;
  const app::ModelProblem problem = app::make_box_problem(n);
  fem::FeProblem fe(problem.mesh, problem.materials, problem.dofmap);
  fem::LinearSystem sys = fem::assemble_linear_system(fe);
  const idx unknowns = sys.stiffness.nrows;
  mg::MgOptions mo;
  const mg::Hierarchy grids = mg::Hierarchy::build_grids(
      problem.mesh, problem.dofmap, std::move(sys.stiffness), mo);

  struct Row {
    int ranks;
    double wall;
    std::int64_t max_galerkin_flops;
    std::int64_t bytes;
    std::int64_t messages;
  };
  std::vector<Row> rows;

  std::printf("matrix setup (distributed R A R^T) rank sweep, %d unknowns, "
              "%d levels\n",
              unknowns, grids.num_levels());
  std::printf("%-6s | %-10s %-18s %-12s %-9s\n", "ranks", "setup (s)",
              "max galerkin Mflop", "sent MB", "messages");
  for (const int p : {1, 2, 4, 8}) {
    const std::vector<idx> owner =
        partition::rcb_partition(problem.mesh.coords(), p);
    std::vector<std::int64_t> flops(static_cast<std::size_t>(p), 0);
    std::vector<parx::TrafficStats> stats(static_cast<std::size_t>(p));
    double wall = 0;
    parx::Runtime::run(p, [&](parx::Comm& comm) {
      comm.barrier();
      const parx::TrafficStats before = comm.traffic();
      Timer timer;
      const dla::DistHierarchy dist =
          dla::DistHierarchy::build(comm, grids, owner);
      comm.barrier();
      if (comm.rank() == 0) wall = timer.seconds();
      const parx::TrafficStats after = comm.traffic();
      stats[comm.rank()] = {after.messages_sent - before.messages_sent,
                            after.bytes_sent - before.bytes_sent,
                            after.flops - before.flops};
      flops[comm.rank()] = dist.galerkin_flops();
    });
    Row row{p, wall, 0, 0, 0};
    for (int r = 0; r < p; ++r) {
      row.max_galerkin_flops =
          std::max(row.max_galerkin_flops, flops[static_cast<std::size_t>(r)]);
      row.bytes += stats[static_cast<std::size_t>(r)].bytes_sent;
      row.messages += stats[static_cast<std::size_t>(r)].messages_sent;
    }
    rows.push_back(row);
    std::printf("%-6d | %-10.3f %-18.1f %-12.2f %-9lld\n", row.ranks, row.wall,
                static_cast<double>(row.max_galerkin_flops) / 1e6,
                static_cast<double>(row.bytes) / 1e6,
                static_cast<long long>(row.messages));
  }
  std::printf(
      "\nshape claim: the busiest rank's triple-product flops shrink as\n"
      "ranks grow (per-rank setup work scales with local rows); the\n"
      "communication volume is the price of the row-distributed product.\n");

  std::FILE* json = std::fopen("BENCH_setup.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_setup.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"setup\",\n  \"unknowns\": %d,\n"
                     "  \"levels\": %d,\n  \"sweep\": [\n",
               unknowns, grids.num_levels());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(json,
                 "    {\"ranks\": %d, \"wall_setup_s\": %.6f, "
                 "\"max_rank_galerkin_flops\": %lld, \"setup_bytes\": %lld, "
                 "\"setup_messages\": %lld}%s\n",
                 r.ranks, r.wall, static_cast<long long>(r.max_galerkin_flops),
                 static_cast<long long>(r.bytes),
                 static_cast<long long>(r.messages),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_setup.json\n");
  return 0;
}
