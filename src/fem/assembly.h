// Global assembly: dof management, Dirichlet constraints, and the driver
// that turns a mesh + material table + displacement field into a global
// (free-dof) stiffness matrix and internal force vector — the FEAP
// substitute ("each processor can compute all rows of the stiffness matrix
// ... associated with vertices that have been partitioned to the
// processor", §5; we assemble the global matrix once and distribute rows
// in `dla`).
#pragma once

#include <span>
#include <vector>

#include "common/config.h"
#include "fem/element.h"
#include "fem/material.h"
#include "la/bsr.h"
#include "la/csr.h"
#include "mesh/mesh.h"

namespace prom::fem {

/// Maps (vertex, component) to a global dof (3*vertex + component) and
/// tracks Dirichlet constraints with prescribed values.
class DofMap {
 public:
  explicit DofMap(idx num_vertices);

  idx num_vertices() const { return nv_; }
  idx num_dofs() const { return 3 * nv_; }

  static idx dof_of(idx vertex, int comp) { return 3 * vertex + comp; }

  /// Prescribes component `comp` of `vertex` to `value`.
  void fix(idx vertex, int comp, real value);

  /// Prescribes all three components of every vertex in `vertices`.
  void fix_all(std::span<const idx> vertices, real value = 0);

  bool is_constrained(idx dof) const { return constrained_[dof] != 0; }
  real bc_value(idx dof) const { return bc_value_[dof]; }

  /// Rescales every prescribed value by `factor` (displacement stepping).
  void scale_bc(real factor);

  /// Builds the free-dof numbering; call after all fix() calls. (May be
  /// called again after further fixes.)
  void finalize();

  idx num_free() const { return static_cast<idx>(free_dofs_.size()); }
  const std::vector<idx>& free_dofs() const { return free_dofs_; }
  /// Free index of `dof` or kInvalidIdx if constrained.
  idx free_index(idx dof) const { return free_index_[dof]; }

  /// Expands a free-dof vector to a full vector, inserting `bc_scale *
  /// bc_value` at constrained dofs.
  std::vector<real> full_from_free(std::span<const real> free_values,
                                   real bc_scale = 1) const;

  /// Restricts a full vector to the free dofs.
  std::vector<real> free_from_full(std::span<const real> full_values) const;

 private:
  idx nv_;
  std::vector<char> constrained_;
  std::vector<real> bc_value_;
  std::vector<idx> free_index_;
  std::vector<idx> free_dofs_;
};

struct AssemblyResult {
  la::Csr stiffness;           ///< free x free tangent
  std::vector<real> f_int;     ///< internal force on free dofs
  /// Dirichlet coupling K_fc * u_c at the assembled tangent (free dofs),
  /// using the DofMap's prescribed values; only filled when the stiffness
  /// is requested. The linearized displacement-driven system is
  /// K_ff u_f = -bc_coupling.
  std::vector<real> bc_coupling;
  idx plastic_gauss_points = 0;
  idx hard_gauss_points = 0;   ///< Gauss points in J2 cells
};

/// A finite element problem: mesh + per-material-id constitutive models +
/// constraints + Gauss-point history. Drives element kernels and owns the
/// committed/trial plastic states.
class FeProblem {
 public:
  FeProblem(const mesh::Mesh& mesh, std::vector<Material> materials,
            DofMap dofmap, bool bbar = true, bool fbar = false);

  const mesh::Mesh& mesh() const { return *mesh_; }
  const DofMap& dofmap() const { return dofmap_; }
  DofMap& dofmap() { return dofmap_; }
  const std::vector<Material>& materials() const { return materials_; }

  /// Assembles the tangent and/or internal force at the displacement state
  /// `u_full` (full-length, with prescribed values already inserted at
  /// constrained dofs). Updates the *trial* plastic states as a side
  /// effect; call commit() to accept them.
  AssemblyResult assemble(std::span<const real> u_full,
                          bool want_stiffness = true);

  /// Node-block tangent at `u_full`: each element's vertex-pair coupling
  /// is scattered as one dense 3x3 block (la::BlockTriplet3), producing
  /// the BAIJ operator directly without an intermediate scalar CSR.
  /// Constrained components are zeroed inside the blocks (their couplings
  /// accumulate into `bc_coupling`, in the same order as assemble(), so
  /// the rhs is bit-identical) and constrained diagonal slots carry
  /// identity pivots. Updates trial plastic states like assemble().
  struct BsrAssembly {
    la::NodeBlockMap map;          ///< free dofs <-> node-block slots
    la::Bsr3 stiffness;            ///< node space, map.nnodes square
    std::vector<real> bc_coupling; ///< K_fc u_c on the free dofs
  };
  BsrAssembly assemble_bsr(std::span<const real> u_full);

  /// Accepts the trial plastic states (end of a converged load step).
  void commit();

  /// Snapshot/restore of the committed Gauss-point history — used by
  /// adaptive load stepping to roll back a failed step.
  std::vector<J2State> snapshot_state() const { return committed_; }
  void restore_state(std::vector<J2State> state);

  /// Fraction of Gauss points in J2 cells whose *committed* state has
  /// yielded (Figure 13 left).
  real plastic_fraction() const;

 private:
  const mesh::Mesh* mesh_;
  std::vector<Material> materials_;
  DofMap dofmap_;
  bool bbar_;
  bool fbar_;
  int gp_per_cell_;
  std::vector<J2State> committed_;
  std::vector<J2State> trial_;
};

/// Convenience for the linear studies: assembles the tangent at the
/// *unloaded* state (u = 0 everywhere, so every material is at its elastic
/// reference and the tangent is SPD) and forms the displacement-driven
/// load f = -K_fc * u_c on the free dofs.
struct LinearSystem {
  la::Csr stiffness;
  std::vector<real> rhs;
};
LinearSystem assemble_linear_system(FeProblem& problem);

/// Blocked counterpart of assemble_linear_system: tangent at the unloaded
/// state assembled straight into node blocks, rhs = -K_fc * u_c.
struct LinearSystemBsr {
  la::NodeBlockMap map;
  la::Bsr3 stiffness;
  std::vector<real> rhs;
};
LinearSystemBsr assemble_linear_system_bsr(FeProblem& problem);

}  // namespace prom::fem
