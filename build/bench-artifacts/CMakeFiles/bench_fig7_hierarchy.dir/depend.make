# Empty dependencies file for bench_fig7_hierarchy.
# This may be replaced when dependencies are built.
