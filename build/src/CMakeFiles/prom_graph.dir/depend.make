# Empty dependencies file for prom_graph.
# This may be replaced when dependencies are built.
