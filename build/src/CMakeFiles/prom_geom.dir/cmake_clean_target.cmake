file(REMOVE_RECURSE
  "libprom_geom.a"
)
