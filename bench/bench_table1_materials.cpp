// Table 1 reproduction: the two nonlinear materials of the §7 model
// problem. Table 1 is configuration, not measurement, so this harness
// prints the configured constitution AND verifies it by driving each
// material through single-Gauss-point tests: uniaxial stiffness (E),
// lateral contraction (nu), yield onset and hardening slope for the hard
// J2 material, and the large-deformation response of the soft Neo-Hookean
// material.
#include <cmath>
#include <cstdio>

#include "fem/material.h"

using namespace prom;
using namespace prom::fem;

namespace {

/// Uniaxial stress response of the J2 material at total strain e11 (with
/// the lateral strains iterated so sigma22 = sigma33 = 0).
Mat3 j2_uniaxial_stress(const Material& mat, real e11, const J2State& state,
                        J2State& updated) {
  real lateral = -mat.poisson * e11;
  Mat3 stress;
  Tangent c;
  for (int it = 0; it < 60; ++it) {
    Mat3 strain = Mat3::zero();
    strain(0, 0) = e11;
    strain(1, 1) = strain(2, 2) = lateral;
    j2_radial_return(mat, strain, state, updated, stress, c);
    if (std::fabs(stress(1, 1)) < 1e-14 * mat.youngs) break;
    // Newton on the lateral strain: d(sigma22)/d(lateral) ~ C2222 + C2233.
    const real slope =
        tangent_at(c, 1, 1, 1, 1) + tangent_at(c, 1, 1, 2, 2);
    lateral -= stress(1, 1) / slope;
  }
  return stress;
}

}  // namespace

int main() {
  std::printf("Table 1: nonlinear materials (paper values + verification)\n");
  std::printf(
      "%-8s %-12s %-9s %-12s %-12s %-12s\n", "material", "elastic mod.",
      "Poisson", "deformation", "yield", "hardening");
  const Material soft = Material::paper_soft();
  const Material hard = Material::paper_hard();
  std::printf("%-8s %-12g %-9g %-12s %-12s %-12s\n", "soft", soft.youngs,
              soft.poisson, "large (NH)", "-", "-");
  std::printf("%-8s %-12g %-9g %-12s %-12g %-12s\n", "hard", hard.youngs,
              hard.poisson, "large*", hard.yield_stress, "0.002 E");
  std::printf("  (* J2 update via small-strain radial return, see "
              "DESIGN.md substitution 4)\n\n");

  // --- Verify the hard material: uniaxial stress-strain curve. ---
  std::printf("hard material uniaxial response (J2, kinematic hardening):\n");
  std::printf("%-10s %-14s %-14s %-10s\n", "strain", "stress", "tangent E",
              "plastic?");
  J2State state;
  real prev_strain = 0, prev_stress = 0;
  real measured_e = 0, measured_h_slope = 0;
  const real yield_strain = hard.yield_stress / hard.youngs;
  for (real e11 : {0.2 * yield_strain, 0.6 * yield_strain,
                   2.0 * yield_strain, 6.0 * yield_strain,
                   12.0 * yield_strain}) {
    J2State updated;
    const Mat3 stress = j2_uniaxial_stress(hard, e11, state, updated);
    const real slope =
        (stress(0, 0) - prev_stress) / (e11 - prev_strain);
    if (e11 < yield_strain) measured_e = slope;
    if (e11 > 4 * yield_strain) measured_h_slope = slope;
    std::printf("%-10.5f %-14.6e %-14.4e %-10s\n", e11, stress(0, 0), slope,
                updated.has_yielded() ? "yes" : "no");
    prev_strain = e11;
    prev_stress = stress(0, 0);
  }
  std::printf("  measured elastic modulus : %.4f (Table 1: %.4f)\n",
              measured_e, hard.youngs);
  // Linear kinematic hardening: uniaxial elastoplastic slope is
  // E_T = E*H / (E + H) with H the hardening modulus.
  const real expected_tangent =
      hard.youngs * hard.hardening / (hard.youngs + hard.hardening);
  std::printf("  measured hardening slope : %.6f (E*H/(E+H) = %.6f)\n\n",
              measured_h_slope, expected_tangent);

  // --- Verify the soft material: Neo-Hookean uniaxial stretch. ---
  std::printf("soft material uniaxial stretch (Neo-Hookean, nu = %.2f):\n",
              soft.poisson);
  std::printf("%-10s %-14s %-14s\n", "stretch", "P11", "small-strain E*e");
  for (real stretch : {0.999, 0.99, 0.95, 0.9, 0.8}) {
    // Iterate lateral stretch for a uniaxial stress state.
    real lat = 1 + soft.poisson * (1 - stretch);
    Mat3 p;
    Tangent a;
    for (int it = 0; it < 80; ++it) {
      Mat3 f = Mat3::zero();
      f(0, 0) = stretch;
      f(1, 1) = f(2, 2) = lat;
      neo_hookean_stress(soft, f, p, a);
      if (std::fabs(p(1, 1)) < 1e-18) break;
      lat -= p(1, 1) / tangent_at(a, 1, 1, 1, 1);
    }
    std::printf("%-10.3f %-14.6e %-14.6e\n", stretch, p(0, 0),
                soft.youngs * (stretch - 1));
  }
  std::printf("  (response follows E*e for small strain, stiffening "
              "nonlinearly in compression)\n");
  return 0;
}
