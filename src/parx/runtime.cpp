#include "parx/runtime.h"

#include <condition_variable>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "common/flops.h"
#include "common/parallel.h"
#include "obs/trace.h"

namespace prom::parx {
namespace detail {

// Shared state of one SPMD region: a mailbox per rank plus traffic stats.
class Context {
 public:
  explicit Context(int nranks) : nranks_(nranks), stats_(nranks) {
    boxes_.reserve(nranks);
    for (int r = 0; r < nranks; ++r) {
      boxes_.push_back(std::make_unique<Mailbox>());
    }
  }

  int nranks() const { return nranks_; }

  void send(int from, int to, int tag, std::span<const std::byte> data) {
    PROM_CHECK_MSG(to >= 0 && to < nranks_, "send: bad destination rank");
    PROM_CHECK_MSG(from != to, "send: self-sends are not supported");
    Mailbox& box = *boxes_[to];
    {
      std::lock_guard<std::mutex> lock(box.m);
      box.q.push_back(
          Message{from, tag, std::vector<std::byte>(data.begin(), data.end())});
    }
    box.cv.notify_all();
    stats_[from].messages_sent += 1;
    stats_[from].bytes_sent += static_cast<std::int64_t>(data.size());
    // Mirror into the sender thread's obs counters so tracing spans can
    // bracket traffic deltas without a Comm handle (send is only ever
    // called from rank `from`'s own thread).
    obs::count_message(static_cast<std::int64_t>(data.size()));
  }

  std::vector<std::byte> recv(int me, int from, int tag) {
    PROM_CHECK_MSG(from >= 0 && from < nranks_, "recv: bad source rank");
    Mailbox& box = *boxes_[me];
    std::unique_lock<std::mutex> lock(box.m);
    for (;;) {
      for (auto it = box.q.begin(); it != box.q.end(); ++it) {
        if (it->src == from && it->tag == tag) {
          std::vector<std::byte> data = std::move(it->data);
          box.q.erase(it);
          return data;
        }
      }
      box.cv.wait(lock);
    }
  }

  // Returns the source of the earliest-arrived waiting message with `tag`
  // from any rank in `sources`, blocking until one exists. Scanning the
  // deque front-to-back gives arrival order because sends append at the
  // back under the mailbox lock.
  int wait_any(int me, std::span<const int> sources, int tag) {
    Mailbox& box = *boxes_[me];
    std::unique_lock<std::mutex> lock(box.m);
    for (;;) {
      for (const Message& msg : box.q) {
        if (msg.tag != tag) continue;
        for (const int s : sources) {
          if (msg.src == s) return msg.src;
        }
      }
      box.cv.wait(lock);
    }
  }

  void recv_into(int me, int from, int tag, std::span<std::byte> out) {
    PROM_CHECK_MSG(from >= 0 && from < nranks_, "recv_into: bad source rank");
    Mailbox& box = *boxes_[me];
    std::unique_lock<std::mutex> lock(box.m);
    for (;;) {
      for (auto it = box.q.begin(); it != box.q.end(); ++it) {
        if (it->src == from && it->tag == tag) {
          PROM_CHECK_MSG(it->data.size() == out.size(),
                         "recv_into: message size mismatch");
          if (!out.empty()) {
            std::memcpy(out.data(), it->data.data(), out.size());
          }
          box.q.erase(it);
          return;
        }
      }
      box.cv.wait(lock);
    }
  }

  bool has_message(int me, int from, int tag) {
    Mailbox& box = *boxes_[me];
    std::lock_guard<std::mutex> lock(box.m);
    for (const Message& msg : box.q) {
      if (msg.src == from && msg.tag == tag) return true;
    }
    return false;
  }

  TrafficStats& stats(int rank) { return stats_[rank]; }
  std::vector<TrafficStats> take_stats() { return std::move(stats_); }

 private:
  struct Message {
    int src;
    int tag;
    std::vector<std::byte> data;
  };
  struct Mailbox {
    std::mutex m;
    std::condition_variable cv;
    std::deque<Message> q;
  };

  int nranks_;
  std::vector<std::unique_ptr<Mailbox>> boxes_;
  std::vector<TrafficStats> stats_;
};

}  // namespace detail

namespace {

// Reserved internal tags; user tags must be >= 0 and below 0x7ffffff0.
constexpr int kTagBarrierUp = -1;
constexpr int kTagBarrierDown = -2;
constexpr int kTagBcast = -3;
constexpr int kTagReduce = -4;
constexpr int kTagAllgather = -5;

}  // namespace

int Comm::size() const {
  return group_ != nullptr ? static_cast<int>(group_->size()) : ctx_->nranks();
}

int Comm::global_rank(int r) const {
  if (group_ == nullptr) return r;
  PROM_CHECK_MSG(r >= 0 && r < static_cast<int>(group_->size()),
                 "rank outside this communicator's group");
  return (*group_)[r];
}

Comm Comm::split(std::span<const int> members) const {
  PROM_CHECK_MSG(!members.empty(), "split: empty member list");
  auto group = std::make_shared<std::vector<int>>();
  group->reserve(members.size());
  int local = -1;
  for (std::size_t i = 0; i < members.size(); ++i) {
    PROM_CHECK_MSG(members[i] >= 0 && members[i] < size(),
                   "split: member outside this communicator");
    PROM_CHECK_MSG(i == 0 || members[i - 1] < members[i],
                   "split: members must be strictly ascending");
    if (members[i] == rank_) local = static_cast<int>(i);
    group->push_back(global_rank(members[i]));
  }
  PROM_CHECK_MSG(local >= 0, "split: the calling rank must be a member");
  Comm sub(ctx_, local);
  sub.group_ = std::move(group);
  return sub;
}

void Comm::send_bytes(int to, int tag, std::span<const std::byte> data) {
  ctx_->send(global_rank(rank_), global_rank(to), tag, data);
}

std::vector<std::byte> Comm::recv_bytes(int from, int tag) {
  return ctx_->recv(global_rank(rank_), global_rank(from), tag);
}

void Comm::recv_bytes_into(int from, int tag, std::span<std::byte> out) {
  ctx_->recv_into(global_rank(rank_), global_rank(from), tag, out);
}

bool Comm::has_message(int from, int tag) const {
  return ctx_->has_message(global_rank(rank_), global_rank(from), tag);
}

int Comm::wait_any(std::span<const int> sources, int tag) const {
  if (group_ == nullptr) return ctx_->wait_any(rank_, sources, tag);
  std::vector<int> gsources(sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    gsources[i] = global_rank(sources[i]);
  }
  const int g = ctx_->wait_any(global_rank(rank_), gsources, tag);
  for (std::size_t i = 0; i < gsources.size(); ++i) {
    if (gsources[i] == g) return sources[i];
  }
  PROM_CHECK_MSG(false, "wait_any: source not in this communicator");
  return -1;
}

TrafficStats Comm::traffic() const {
  TrafficStats t = ctx_->stats(global_rank(rank_));
  t.flops = thread_flops();
  return t;
}

void Comm::barrier() {
  const obs::Span span("parx.barrier");
  // Binomial reduce to rank 0 followed by a binomial broadcast. All p2p
  // below goes through send_bytes/recv_bytes, which translate group ranks
  // onto the context — the same trees run unchanged on split() subsets.
  const int p = size();
  const std::byte token{0};
  for (int mask = 1; mask < p; mask <<= 1) {
    if (rank_ & mask) {
      send_bytes(rank_ - mask, kTagBarrierUp, {&token, 1});
      break;
    }
    if (rank_ + mask < p) recv_bytes(rank_ + mask, kTagBarrierUp);
  }
  // Binomial release: each rank receives from the parent given by its
  // lowest set bit, then forwards to children at the smaller bit positions.
  int mask = 1;
  while (mask < p) {
    if (rank_ & mask) {
      recv_bytes(rank_ - mask, kTagBarrierDown);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (rank_ + mask < p) {
      send_bytes(rank_ + mask, kTagBarrierDown, {&token, 1});
    }
    mask >>= 1;
  }
}

std::vector<std::byte> Comm::bcast_bytes(std::vector<std::byte> data,
                                         int root) {
  const obs::Span span("parx.bcast");
  const int p = size();
  const int vr = (rank_ - root + p) % p;
  auto to_real = [&](int v) { return (v + root) % p; };
  // MPICH-style binomial tree: receive from the parent at the lowest set
  // bit of vr, then forward to children at all smaller bit positions.
  int mask = 1;
  while (mask < p) {
    if (vr & mask) {
      data = recv_bytes(to_real(vr - mask), kTagBcast);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vr + mask < p) {
      send_bytes(to_real(vr + mask), kTagBcast,
                 std::span<const std::byte>(data));
    }
    mask >>= 1;
  }
  return data;
}

std::vector<std::vector<std::byte>> Comm::allgatherv_bytes(
    std::span<const std::byte> mine) {
  // Bruck-style dissemination allgather with variable block sizes: after
  // round k every rank holds the `cnt` circularly-consecutive blocks
  // starting at its own, and each round (ceil(log2 p) total) it ships the
  // first min(cnt, p-cnt) of them to rank-cnt while receiving the next
  // ones from rank+cnt. Every foreign block crosses the wire exactly once
  // per receiver, so total data traffic is (p-1)·S plus an 8-byte length
  // header per shipped block — no rank ever funnels the whole payload.
  const int p = size();
  std::vector<std::vector<std::byte>> all(p);
  all[rank_].assign(mine.begin(), mine.end());
  int cnt = 1;
  while (cnt < p) {
    const int step = std::min(cnt, p - cnt);
    const int dst = (rank_ - cnt + p) % p;
    const int src = (rank_ + cnt) % p;
    std::vector<std::byte> msg;
    for (int k = 0; k < step; ++k) {
      const std::vector<std::byte>& blk = all[(rank_ + k) % p];
      const std::int64_t sz = static_cast<std::int64_t>(blk.size());
      const auto* hdr = reinterpret_cast<const std::byte*>(&sz);
      msg.insert(msg.end(), hdr, hdr + sizeof(sz));
      msg.insert(msg.end(), blk.begin(), blk.end());
    }
    send_bytes(dst, kTagAllgather, msg);
    const std::vector<std::byte> in = recv_bytes(src, kTagAllgather);
    std::size_t off = 0;
    for (int k = 0; k < step; ++k) {
      std::int64_t sz = 0;
      PROM_CHECK(off + sizeof(sz) <= in.size());
      std::memcpy(&sz, in.data() + off, sizeof(sz));
      off += sizeof(sz);
      PROM_CHECK(sz >= 0 && off + static_cast<std::size_t>(sz) <= in.size());
      all[(src + k) % p].assign(in.begin() + off, in.begin() + off + sz);
      off += static_cast<std::size_t>(sz);
    }
    PROM_CHECK(off == in.size());
    cnt += step;
  }
  return all;
}

namespace {

template <typename T>
std::vector<T> allreduce_impl(Comm& comm, std::vector<T> v,
                              Comm::ReduceOp op) {
  const obs::Span span("parx.allreduce");
  const int p = comm.size();
  const int rank = comm.rank();
  auto combine = [op](std::vector<T>& acc, const std::vector<T>& other) {
    PROM_CHECK(acc.size() == other.size());
    for (std::size_t i = 0; i < acc.size(); ++i) {
      switch (op) {
        case Comm::ReduceOp::kSum:
          acc[i] += other[i];
          break;
        case Comm::ReduceOp::kMin:
          acc[i] = std::min(acc[i], other[i]);
          break;
        case Comm::ReduceOp::kMax:
          acc[i] = std::max(acc[i], other[i]);
          break;
      }
    }
  };
  // Binomial reduce to rank 0 (of this communicator).
  for (int mask = 1; mask < p; mask <<= 1) {
    if (rank & mask) {
      comm.send_bytes(rank - mask, kTagReduce,
                      std::as_bytes(std::span<const T>(v)));
      break;
    }
    if (rank + mask < p) {
      std::vector<std::byte> raw = comm.recv_bytes(rank + mask, kTagReduce);
      std::vector<T> other(raw.size() / sizeof(T));
      if (!raw.empty()) std::memcpy(other.data(), raw.data(), raw.size());
      combine(v, other);
    }
  }
  return comm.bcast(std::move(v), 0);
}

}  // namespace

std::vector<double> Comm::allreduce(std::vector<double> v, ReduceOp op) {
  return allreduce_impl<double>(*this, std::move(v), op);
}

std::vector<std::int64_t> Comm::allreduce(std::vector<std::int64_t> v,
                                          ReduceOp op) {
  return allreduce_impl<std::int64_t>(*this, std::move(v), op);
}

std::vector<TrafficStats> Runtime::run(
    int nranks, const std::function<void(Comm&)>& fn) {
  PROM_CHECK_MSG(nranks >= 1, "Runtime::run needs at least one rank");
  // Tell the kernel-thread layer how many ranks share the machine so the
  // default intra-rank thread count divides hardware_concurrency instead
  // of oversubscribing it (the CLUMP model: ranks x kernel threads).
  common::set_active_ranks(nranks);
  detail::Context ctx(nranks);
  std::vector<std::thread> threads;
  threads.reserve(nranks);
  std::mutex err_mutex;
  std::exception_ptr first_error;
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      reset_thread_flops();
      obs::set_thread_rank(r);
      try {
        Comm comm(&ctx, r);
        fn(comm);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      ctx.stats(r).flops = thread_flops();
    });
  }
  for (std::thread& t : threads) t.join();
  common::set_active_ranks(1);
  if (first_error) std::rethrow_exception(first_error);
  return ctx.take_stats();
}

}  // namespace prom::parx
