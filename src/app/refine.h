// The adaptive solve–estimate–mark–refine loop shared by the solve
// service, the quickstart, and bench_refine: starting from a model
// problem's mesh (hexes are Kuhn-split to tets first), each round solves
// on the current mesh, computes the residual-based error indicator
// (fem/indicator.h), marks a fixed fraction of cells, bisects them
// (mesh::refine_local), and re-applies the problem's Dirichlet
// constraints through ModelProblem::fix_bcs / fix_scalar_bcs. The loop
// runs serially — like every other mesh-setup stage — so the refined
// mesh family is deterministic; the distributed layers consume its
// output (mg::Hierarchy::build_grids_refined + a fresh RCB partition of
// the refined coordinates).
#pragma once

#include <span>
#include <vector>

#include "app/driver.h"
#include "mesh/refine.h"

namespace prom::app {

/// Reads PROM_REFINE (adaptive refinement rounds; unset or empty means
/// 0 = no refinement). Fails fast on a negative or non-numeric value.
int refine_rounds_from_env();

struct AdaptiveOptions {
  int rounds = 0;             ///< refinement rounds (0 = loop is a no-op)
  real mark_fraction = 0.1;   ///< fixed-fraction marking per round
  /// Tolerance of the per-round estimate solves. Looser than the final
  /// solve: the indicator only needs the solution's gradients roughly
  /// right to rank cells.
  real estimate_rtol = 1e-6;
  int max_iters = 200;
  mg::MgOptions mg;           ///< hierarchy options for the estimate solves
  mg::CycleKind cycle = mg::CycleKind::kFmg;
};

/// The refined mesh family one adaptive loop produced, in exactly the
/// shape mg::Hierarchy::build_grids_refined consumes. meshes()[0] is the
/// base tet mesh, meshes()[r+1] (= rounds[r].mesh) the mesh after round
/// r+1; dofmaps / scalar_dofmaps hold each mesh's finalized constraints
/// (one family per equation kind, the other stays empty).
struct AdaptiveLoop {
  mesh::Mesh base;                         ///< tet conversion of the input mesh
  std::vector<mesh::RefineResult> rounds;  ///< rounds[r]: meshes r -> r+1
  std::vector<fem::DofMap> dofmaps;
  std::vector<fem::ScalarDofMap> scalar_dofmaps;

  /// Assembled system on the final mesh's free dofs (what the caller
  /// solves for real).
  fem::LinearSystem sys;

  /// Free-dof count after each round, round_unknowns[0] being the base
  /// mesh (bench_refine's adaptive-vs-uniform dof table).
  std::vector<idx> round_unknowns;

  const mesh::Mesh& final_mesh() const {
    return rounds.empty() ? base : rounds.back().mesh;
  }
  const fem::DofMap& final_dofmap() const { return dofmaps.back(); }
  const fem::ScalarDofMap& final_scalar_dofmap() const {
    return scalar_dofmaps.back();
  }

  /// Pointer views for mg::Hierarchy::build_grids_refined (coarsest
  /// first: base, then each round's mesh).
  std::vector<const mesh::Mesh*> mesh_ptrs() const;
  std::vector<const fem::DofMap*> dofmap_ptrs() const;
  std::vector<const fem::ScalarDofMap*> scalar_dofmap_ptrs() const;
};

/// Runs `opts.rounds` adaptive rounds on `problem` and returns the mesh
/// family plus the final assembled system. Requires the problem to carry
/// the constraint re-fixer for its equation kind (fix_bcs for
/// elasticity, fix_scalar_bcs for the scalar classes) — the factories in
/// app/driver.h all do. With rounds == 0 this just converts the mesh to
/// tets, rebuilds the constraints, and assembles. Emits one
/// "refine.round" span per round plus refine.cells / refine.unknowns
/// gauges.
AdaptiveLoop run_adaptive_refinement(const ModelProblem& problem,
                                     const AdaptiveOptions& opts);

/// Propagates a vertex -> rank assignment of the base mesh through the
/// bisection rounds (a midpoint inherits the owner of its first parent
/// endpoint): the "keep the old partition" ownership whose load imbalance
/// the obs gauges and bench_refine compare against a fresh RCB cut of the
/// refined coordinates.
std::vector<idx> inherit_owners(const AdaptiveLoop& loop,
                                std::span<const idx> base_owner);

/// Max-over-mean rank load of a vertex ownership vector (weight 1 per
/// vertex); 1.0 is perfect balance. Ranks beyond `nranks` are invalid.
real partition_imbalance(std::span<const idx> owner, int nranks);

}  // namespace prom::app
