# Empty compiler generated dependencies file for test_restriction.
# This may be replaced when dependencies are built.
