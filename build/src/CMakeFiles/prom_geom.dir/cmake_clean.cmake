file(REMOVE_RECURSE
  "CMakeFiles/prom_geom.dir/geom/predicates.cpp.o"
  "CMakeFiles/prom_geom.dir/geom/predicates.cpp.o.d"
  "libprom_geom.a"
  "libprom_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prom_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
