file(REMOVE_RECURSE
  "CMakeFiles/thin_body.dir/thin_body.cpp.o"
  "CMakeFiles/thin_body.dir/thin_body.cpp.o.d"
  "thin_body"
  "thin_body.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thin_body.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
