// Lightweight runtime checking. `PROM_CHECK` is used for conditions that
// indicate a programming error or corrupted input; it is active in all
// build types because the cost is negligible relative to the numerical
// kernels it guards.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace prom {

/// Thrown when a PROM_CHECK fails or an API is misused.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] inline void fail(const char* cond, const char* file, int line,
                              const std::string& msg = {}) {
  std::ostringstream os;
  os << "check failed: " << cond << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace prom

#define PROM_CHECK(cond)                                  \
  do {                                                    \
    if (!(cond)) ::prom::fail(#cond, __FILE__, __LINE__); \
  } while (0)

#define PROM_CHECK_MSG(cond, msg)                                \
  do {                                                           \
    if (!(cond)) ::prom::fail(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)
