file(REMOVE_RECURSE
  "CMakeFiles/prom_dla.dir/dla/dist_csr.cpp.o"
  "CMakeFiles/prom_dla.dir/dla/dist_csr.cpp.o.d"
  "CMakeFiles/prom_dla.dir/dla/dist_krylov.cpp.o"
  "CMakeFiles/prom_dla.dir/dla/dist_krylov.cpp.o.d"
  "CMakeFiles/prom_dla.dir/dla/dist_mg.cpp.o"
  "CMakeFiles/prom_dla.dir/dla/dist_mg.cpp.o.d"
  "CMakeFiles/prom_dla.dir/dla/dist_vec.cpp.o"
  "CMakeFiles/prom_dla.dir/dla/dist_vec.cpp.o.d"
  "libprom_dla.a"
  "libprom_dla.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prom_dla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
