# Empty compiler generated dependencies file for prom_fem.
# This may be replaced when dependencies are built.
