#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace prom {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "E";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kDebug:
      return "D";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level = static_cast<int>(level); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void log_line(LogLevel level, const std::string& msg) {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[prom:%s] %s\n", level_tag(level), msg.c_str());
}

}  // namespace prom
