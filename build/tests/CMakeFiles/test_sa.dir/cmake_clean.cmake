file(REMOVE_RECURSE
  "CMakeFiles/test_sa.dir/test_sa.cpp.o"
  "CMakeFiles/test_sa.dir/test_sa.cpp.o.d"
  "test_sa"
  "test_sa.pdb"
  "test_sa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
