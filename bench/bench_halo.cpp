// Halo-exchange rank × threads sweep: fine-level SpMV on the box-problem
// stiffness, synchronous rank-ordered drain vs the latency-hiding
// schedule (post sends, compute interior rows, drain peers in arrival
// order, finish boundary rows). Both paths produce bitwise-identical
// results (gated by test_halo); this harness measures what the overlap
// buys and where the time goes, reading every number out of the obs
// tracer: the SpMV loop runs under "phase.halo_spmv" and the plan's
// "halo.post"/"halo.interior"/"halo.finish"/"halo.boundary" spans break
// the overlapped wall into its pieces. Emits BENCH_halo.json with the
// interior/boundary row split per configuration, so the speedup can be
// judged against the boundary fraction (overlap pays off where interior
// work dominates — the paper's surface-to-volume argument).
//
// Environment: PROM_BENCH_FULL=1 enlarges the problem; PROM_BENCH_SMOKE=1
// shrinks it (the CI smoke lane).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <utility>
#include <vector>

#include "app/driver.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "dla/dist_mg.h"
#include "dla/halo.h"
#include "fem/assembly.h"
#include "mg/hierarchy.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "partition/rcb.h"
#include "parx/runtime.h"

using namespace prom;

namespace {

double component_max_seconds(const obs::Report& rep, const char* name) {
  const obs::ComponentEntry* c = rep.component(name, obs::kNoLevel);
  return c == nullptr ? 0.0 : c->max_rank_seconds;
}

}  // namespace

int main() {
  const bool full = std::getenv("PROM_BENCH_FULL") != nullptr;
  const bool smoke = std::getenv("PROM_BENCH_SMOKE") != nullptr;
  const idx n = smoke ? 10 : (full ? 20 : 14);
  const int iters = smoke ? 40 : 400;
  const app::ModelProblem problem = app::make_box_problem(n);
  fem::FeProblem fe(problem.mesh, problem.materials, problem.dofmap);
  fem::LinearSystem sys = fem::assemble_linear_system(fe);
  const idx unknowns = sys.stiffness.nrows;
  mg::MgOptions mo;
  const mg::Hierarchy grids = mg::Hierarchy::build_grids(
      problem.mesh, problem.dofmap, std::move(sys.stiffness), mo);

  struct Row {
    int ranks;
    int threads;
    std::int64_t interior_rows;
    std::int64_t boundary_rows;
    double wall_sync;
    double wall_overlap;
    double post_s;
    double interior_s;
    double finish_s;
    double boundary_s;
  };
  std::vector<Row> rows;

  obs::Tracer& tracer = obs::Tracer::instance();
  const bool was_tracing = obs::tracing();
  tracer.set_enabled(true);

  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("halo exchange rank x threads sweep, %d unknowns, %d spmv "
              "iterations per timing, %u host cores\n",
              unknowns, iters, cores);
  std::printf("%-6s %-8s | %-10s %-10s | %-11s %-11s %-8s | %-27s\n", "ranks",
              "threads", "interior", "boundary", "sync (s)", "overlap (s)",
              "speedup", "overlap post/int/fin/bnd (ms)");
  const std::vector<int> rank_sweep =
      smoke ? std::vector<int>{1, 2, 4} : std::vector<int>{1, 2, 4, 8};
  const std::vector<int> thread_sweep =
      smoke ? std::vector<int>{1} : std::vector<int>{1, 4};
  for (const int p : rank_sweep) {
    const std::vector<idx> owner =
        partition::rcb_partition(problem.mesh.coords(), p);
    for (const int t : thread_sweep) {
      common::set_kernel_threads(t);
      Row row{};
      row.ranks = p;
      row.threads = t;
      std::vector<std::int64_t> interior(static_cast<std::size_t>(p), 0);
      std::vector<std::int64_t> boundary(static_cast<std::size_t>(p), 0);
      for (const dla::HaloMode mode :
           {dla::HaloMode::kSync, dla::HaloMode::kOverlap}) {
        dla::set_halo_mode(mode);
        const std::int64_t mark = obs::Tracer::now_ns();
        parx::Runtime::run(p, [&](parx::Comm& comm) {
          const dla::DistHierarchy dh =
              dla::DistHierarchy::build(comm, grids, owner);
          const dla::DistCsr& a = dh.level(0).a;
          interior[comm.rank()] =
              static_cast<std::int64_t>(a.interior_rows().size());
          boundary[comm.rank()] =
              static_cast<std::int64_t>(a.boundary_rows().size());
          const idx ln = a.local_rows();
          Rng rng(17 + static_cast<std::uint64_t>(comm.rank()));
          std::vector<real> x(static_cast<std::size_t>(ln));
          for (real& v : x) v = rng.next_real() - 0.5;
          std::vector<real> y(static_cast<std::size_t>(ln));
          comm.barrier();
          const obs::Span span("phase.halo_spmv");
          for (int it = 0; it < iters; ++it) a.spmv(comm, x, y);
          comm.barrier();
        });
        obs::build_report(mark).write_json("report.json");
        const obs::Report rep = obs::Report::read_json("report.json");
        const obs::PhaseEntry* phase = rep.phase("halo_spmv");
        if (phase == nullptr) {
          std::fprintf(stderr, "report.json is missing phase halo_spmv\n");
          return 1;
        }
        if (mode == dla::HaloMode::kSync) {
          row.wall_sync = phase->seconds();
        } else {
          row.wall_overlap = phase->seconds();
          row.post_s = component_max_seconds(rep, "halo.post");
          row.interior_s = component_max_seconds(rep, "halo.interior");
          row.finish_s = component_max_seconds(rep, "halo.finish");
          row.boundary_s = component_max_seconds(rep, "halo.boundary");
        }
      }
      for (int r = 0; r < p; ++r) {
        row.interior_rows += interior[static_cast<std::size_t>(r)];
        row.boundary_rows += boundary[static_cast<std::size_t>(r)];
      }
      rows.push_back(row);
      std::printf(
          "%-6d %-8d | %-10lld %-10lld | %-11.4f %-11.4f %-8.2f | "
          "%.1f/%.1f/%.1f/%.1f\n",
          row.ranks, row.threads, static_cast<long long>(row.interior_rows),
          static_cast<long long>(row.boundary_rows), row.wall_sync,
          row.wall_overlap,
          row.wall_overlap > 0 ? row.wall_sync / row.wall_overlap : 0.0,
          row.post_s * 1e3, row.interior_s * 1e3, row.finish_s * 1e3,
          row.boundary_s * 1e3);
    }
  }
  common::set_kernel_threads(0);
  dla::set_halo_mode(dla::HaloMode::kOverlap);
  tracer.set_enabled(was_tracing);
  std::printf(
      "\nshape claim: with a core per rank, the boundary fraction stays\n"
      "small at p >= 4, the peer drain hides behind the interior sweep, and\n"
      "the overlapped wall beats the synchronous rank-ordered drain; at\n"
      "p = 1 there are no peers and the two schedules coincide. On a host\n"
      "with fewer cores than ranks the virtual ranks time-slice one CPU, so\n"
      "there is no idle time for the overlap to reclaim and the wall\n"
      "comparison degenerates to scheduler noise — the interior/boundary\n"
      "split and the per-phase breakdown stay meaningful; the drain\n"
      "('finish') wall is then the time spent descheduled, not network\n"
      "latency.\n");
  if (cores <= 1) {
    std::printf("note: single-core host detected — expect overlap ~= sync "
                "at best.\n");
  }

  std::FILE* json = std::fopen("BENCH_halo.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_halo.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"halo\",\n  \"unknowns\": %d,\n"
               "  \"spmv_iters\": %d,\n  \"host_cores\": %u,\n"
               "  \"sweep\": [\n",
               unknowns, iters, cores);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        json,
        "    {\"ranks\": %d, \"threads\": %d, \"interior_rows\": %lld, "
        "\"boundary_rows\": %lld, \"wall_sync_s\": %.6f, "
        "\"wall_overlap_s\": %.6f, \"halo_post_s\": %.6f, "
        "\"halo_interior_s\": %.6f, \"halo_finish_s\": %.6f, "
        "\"halo_boundary_s\": %.6f}%s\n",
        r.ranks, r.threads, static_cast<long long>(r.interior_rows),
        static_cast<long long>(r.boundary_rows), r.wall_sync, r.wall_overlap,
        r.post_s, r.interior_s, r.finish_s, r.boundary_s,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_halo.json (timings read from report.json)\n");
  return 0;
}
