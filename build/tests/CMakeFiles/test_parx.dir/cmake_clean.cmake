file(REMOVE_RECURSE
  "CMakeFiles/test_parx.dir/test_parx.cpp.o"
  "CMakeFiles/test_parx.dir/test_parx.cpp.o.d"
  "test_parx"
  "test_parx.pdb"
  "test_parx[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
