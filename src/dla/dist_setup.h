// Distributed matrix setup: the Galerkin triple product R A R^T computed
// on row-distributed matrices (the paper's "matrix setup" phase, Table 3).
// Each rank works only on its own rows plus fetched ghost rows of the
// right-hand factor, so per-rank setup cost scales with local rows — no
// rank ever materializes a global operator. The per-row accumulation order
// mirrors la::spgemm exactly (ascending-column Gustavson), so the
// distributed coarse operators are bit-identical to the serial Galerkin
// chain under the setup permutation.
#pragma once

#include "dla/dist_csr.h"
#include "la/csr.h"
#include "parx/runtime.h"

namespace prom::dla {

/// C = A * B distributed: requires A's column distribution == B's row
/// distribution. Ghost rows of B (rows matching A's ghost columns) are
/// fetched from their owners once. `a_col_serial`, when non-empty, maps a
/// global column id of A to its pre-permutation (serial) id; each output
/// entry then accumulates its terms in ascending *serial* order — the
/// order la::spgemm uses on the unpermuted matrices — so the product is
/// bit-identical to permuting the serial product, for any ownership
/// permutation. Empty means ascending global column order. Collective.
DistCsr dist_spgemm(parx::Comm& comm, const DistCsr& a, const DistCsr& b,
                    std::span<const idx> a_col_serial = {});

/// R^T distributed: each local entry (i, j) is shipped to the owner of
/// output row j; the result is row-distributed by R's column distribution.
/// Collective.
DistCsr dist_transpose(parx::Comm& comm, const DistCsr& r);

/// The Galerkin coarse operator R A R^T, associated exactly as the serial
/// la::galerkin_product: spgemm(R, spgemm(A, R^T)). `fine_col_serial` is
/// the fine level's permutation (new index -> serial free-dof index),
/// forwarded to both products as the term order (both multiply against
/// fine-level columns). Collective.
DistCsr dist_galerkin_product(parx::Comm& comm, const DistCsr& r,
                              const DistCsr& a,
                              std::span<const idx> fine_col_serial = {});

/// Repartitions `a` onto new row/column distributions of the same global
/// sizes (the coarse-level rank-agglomeration step): every owned row is
/// shipped to its new owner with global column ids in storage order, so
/// the redistributed matrix holds bit-identical rows — redistributing
/// back round-trips exactly. Ranks owning nothing under `rows` (the
/// agglomeration's idle set) end up with an empty local block and no
/// exchange-plan roles at this level. Collective.
DistCsr dist_redistribute(parx::Comm& comm, const DistCsr& a,
                          const RowDist& rows, const RowDist& cols);

/// Result of repartition_mesh: the migrated operator plus the permutation
/// (new global index -> serial index) its rows and columns now follow.
struct RepartitionResult {
  DistCsr a;
  std::vector<idx> perm;
};

/// Migrates a row-distributed operator onto a new serial-row -> rank
/// assignment (the refine->rebalance step: `new_owner` is typically
/// partition::rcb_partition of the refined mesh, expanded to dofs).
/// Unlike dist_redistribute, the global numbering changes: the new
/// numbering stable-sorts the serial rows by their new owner — exactly
/// the recipe DistHierarchy::build uses — so the result is bit-identical
/// to DistCsr::from_global_permuted of the serial operator under the new
/// assignment, without any rank touching the serial matrix. `old_perm`
/// maps `a`'s current global ids to serial ids (DistHierarchy::
/// permutation(0) when migrating a fine level). Collective.
RepartitionResult repartition_mesh(parx::Comm& comm, const DistCsr& a,
                                   std::span<const idx> old_perm,
                                   std::span<const idx> new_owner);

/// Gathers a distributed matrix to a replicated la::Csr on every rank.
/// Only legitimate for the constant-size coarsest operator (the redundant
/// coarse solve of §5); everything larger stays distributed. Collective.
la::Csr dist_gather_matrix(parx::Comm& comm, const DistCsr& a);

}  // namespace prom::dla
