// Distributed preconditioned conjugate gradient over parx: literally the
// same implementation as la::pcg (la::pcg_any), instantiated with the
// ParxBackend so reductions allreduce and operator application is the
// distributed SpMV — the paper's solve phase.
#pragma once

#include <span>

#include "dla/dist_csr.h"
#include "la/krylov.h"
#include "la/multivec.h"
#include "parx/runtime.h"

namespace prom::dla {

/// A distributed linear operator: applies to the local block of a
/// distributed vector; implementations communicate internally.
class DistOperator {
 public:
  virtual ~DistOperator() = default;
  virtual idx local_n() const = 0;
  virtual void apply(parx::Comm& comm, std::span<const real> x_local,
                     std::span<real> y_local) const = 0;
  /// Column-blocked apply on the local blocks of k distributed vectors;
  /// column j is bitwise identical to `apply` on that column. Overridden
  /// by operators whose exchange can carry all columns in one message per
  /// peer; the default applies column by column. Collective.
  virtual void apply_mv(parx::Comm& comm, const la::MultiVec& x_local,
                        la::MultiVec& y_local) const {
    for (int j = 0; j < x_local.cols(); ++j) {
      apply(comm, x_local.col(j), y_local.col(j));
    }
  }
};

/// Adapter for a square DistCsr, with the fused residual the ParxBackend
/// picks up (bitwise equal to apply + waxpby, see la/backend.h).
class DistCsrOperator final : public DistOperator {
 public:
  explicit DistCsrOperator(const DistCsr& a) : a_(&a) {}
  idx local_n() const override { return a_->local_rows(); }
  void apply(parx::Comm& comm, std::span<const real> x_local,
             std::span<real> y_local) const override {
    a_->spmv(comm, x_local, y_local);
  }
  void residual(parx::Comm& comm, std::span<const real> b_local,
                std::span<const real> x_local,
                std::span<real> r_local) const {
    a_->residual(comm, b_local, x_local, r_local);
  }
  void apply_mv(parx::Comm& comm, const la::MultiVec& x_local,
                la::MultiVec& y_local) const override {
    a_->spmm(comm, x_local, y_local);
  }
  void residual_mv(parx::Comm& comm, const la::MultiVec& b_local,
                   const la::MultiVec& x_local, la::MultiVec& r_local) const {
    a_->residual_mv(comm, b_local, x_local, r_local);
  }

 private:
  const DistCsr* a_;
};

/// Distributed (P)CG; `m` may be null for plain CG. Collective; every rank
/// receives the same KrylovResult.
la::KrylovResult dist_pcg(parx::Comm& comm, const DistOperator& a,
                          const DistOperator* m, std::span<const real> b_local,
                          std::span<real> x_local,
                          const la::KrylovOptions& opts = {});

/// Column-blocked distributed PCG: one exchange per operator application
/// serves all k right-hand sides; column j of the result is bitwise
/// identical to `dist_pcg` on that column alone. Collective; every rank
/// receives the same results.
std::vector<la::KrylovResult> dist_pcg_multi(
    parx::Comm& comm, const DistOperator& a, const DistOperator* m,
    const la::MultiVec& b_local, la::MultiVec& x_local,
    const la::KrylovOptions& opts = {}, la::KrylovWorkspace* ws = nullptr);

/// Distributed restarted GMRES(m) with optional right preconditioning —
/// la::gmres_any on the parx backend, for non-symmetric operators
/// (advection–diffusion). Collective; every rank receives the same
/// KrylovResult.
la::KrylovResult dist_gmres(parx::Comm& comm, const DistOperator& a,
                            const DistOperator* m,
                            std::span<const real> b_local,
                            std::span<real> x_local,
                            const la::GmresOptions& opts = {});

/// Distributed BiCGStab with optional right preconditioning —
/// la::bicgstab_any on the parx backend. Collective; every rank receives
/// the same KrylovResult.
la::KrylovResult dist_bicgstab(parx::Comm& comm, const DistOperator& a,
                               const DistOperator* m,
                               std::span<const real> b_local,
                               std::span<real> x_local,
                               const la::KrylovOptions& opts = {});

}  // namespace prom::dla
