// The regression gate for the intra-rank threading layer (ISSUE 1): every
// parallelized kernel must produce BIT-identical results for 1, 2, and 8
// kernel threads. The contract (common/parallel.h) is that the work
// decomposition depends only on range and grain, never on the thread
// count — these tests catch any kernel whose merge order leaks the
// scheduling.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/flops.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "fem/assembly.h"
#include "la/csr.h"
#include "la/smoothers.h"
#include "la/vec.h"
#include "mesh/generate.h"

namespace prom {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};

/// Runs `fn` under `t` kernel threads, restoring the default after.
template <typename Fn>
auto with_threads(int t, const Fn& fn) {
  common::set_kernel_threads(t);
  auto out = fn();
  common::set_kernel_threads(0);
  return out;
}

template <typename T>
void expect_bitwise_equal(const std::vector<T>& a, const std::vector<T>& b,
                          const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(T)), 0)
      << what << ": results differ bitwise across thread counts";
}

/// Random diagonally dominant symmetric matrix (valid smoother operator).
la::Csr random_spd(Rng& rng, idx n, idx off_diag_per_row) {
  std::vector<la::Triplet> trip;
  std::vector<real> diag(static_cast<std::size_t>(n), real{1});
  for (idx i = 0; i < n; ++i) {
    for (idx k = 0; k < off_diag_per_row; ++k) {
      const idx j = static_cast<idx>(rng.next_below(n));
      if (j == i) continue;
      const real v = rng.next_real() - 0.5;
      trip.push_back({i, j, v});
      trip.push_back({j, i, v});
      diag[i] += std::abs(v) + 1;
      diag[j] += std::abs(v) + 1;
    }
  }
  for (idx i = 0; i < n; ++i) trip.push_back({i, i, diag[i]});
  return la::Csr::from_triplets(n, n, trip);
}

la::Csr random_restriction(Rng& rng, idx ncoarse, idx nfine) {
  std::vector<la::Triplet> trip;
  for (idx c = 0; c < ncoarse; ++c) {
    trip.push_back({c, static_cast<idx>(rng.next_below(nfine)), 1.0});
    for (int k = 0; k < 4; ++k) {
      trip.push_back({c, static_cast<idx>(rng.next_below(nfine)),
                      rng.next_real()});
    }
  }
  return la::Csr::from_triplets(ncoarse, nfine, trip);
}

std::vector<real> random_vector(Rng& rng, idx n) {
  std::vector<real> x(static_cast<std::size_t>(n));
  for (real& v : x) v = 2 * rng.next_real() - 1;
  return x;
}

TEST(ThreadsDeterminism, ParallelForCoversEveryIndexOnce) {
  for (int t : kThreadCounts) {
    for (idx n : {0, 1, 7, 8192, 100001}) {
      std::vector<int> visited(static_cast<std::size_t>(n), 0);
      with_threads(t, [&] {
        common::parallel_for(0, n, 1024, [&](idx b, idx e) {
          for (idx i = b; i < e; ++i) visited[i]++;
        });
        return 0;
      });
      for (idx i = 0; i < n; ++i) {
        ASSERT_EQ(visited[i], 1) << "n=" << n << " t=" << t << " i=" << i;
      }
    }
  }
}

TEST(ThreadsDeterminism, ParallelReduceIsThreadCountInvariant) {
  Rng rng(0xDE7);
  const std::vector<real> x = random_vector(rng, 123457);
  const real base = with_threads(1, [&] {
    return common::parallel_reduce(0, static_cast<idx>(x.size()), 4096,
                                   [&](idx b, idx e) {
                                     real s = 0;
                                     for (idx i = b; i < e; ++i) s += x[i];
                                     return s;
                                   });
  });
  for (int t : kThreadCounts) {
    const real got = with_threads(t, [&] {
      return common::parallel_reduce(0, static_cast<idx>(x.size()), 4096,
                                     [&](idx b, idx e) {
                                       real s = 0;
                                       for (idx i = b; i < e; ++i) s += x[i];
                                       return s;
                                     });
    });
    EXPECT_EQ(std::memcmp(&got, &base, sizeof(real)), 0) << "t=" << t;
  }
}

TEST(ThreadsDeterminism, SpmvFamilyBitIdentical) {
  Rng rng(0x51);
  const la::Csr a = random_spd(rng, 20000, 6);
  const std::vector<real> x = random_vector(rng, a.ncols);
  const std::vector<real> xt = random_vector(rng, a.nrows);

  auto run = [&](int t) {
    return with_threads(t, [&] {
      std::vector<std::vector<real>> out;
      std::vector<real> y(a.nrows);
      a.spmv(x, y);
      out.push_back(y);
      a.spmv_add(x, y);
      out.push_back(y);
      std::vector<real> z(a.ncols);
      a.spmv_transpose(xt, z);
      out.push_back(z);
      return out;
    });
  };
  const auto base = run(1);
  for (int t : kThreadCounts) {
    const auto got = run(t);
    expect_bitwise_equal(got[0], base[0], "spmv");
    expect_bitwise_equal(got[1], base[1], "spmv_add");
    expect_bitwise_equal(got[2], base[2], "spmv_transpose");
  }
}

TEST(ThreadsDeterminism, Blas1BitIdentical) {
  Rng rng(0xB1A5);
  const std::vector<real> x = random_vector(rng, 300000);
  const std::vector<real> y0 = random_vector(rng, 300000);
  auto run = [&](int t) {
    return with_threads(t, [&] {
      std::vector<real> y = y0, w(y0.size());
      la::axpy(0.37, x, y);
      la::aypx(-1.21, x, y);
      la::waxpby(0.5, x, 2.25, y, w);
      const real d = la::dot(x, w);
      const real n2 = la::nrm2(w);
      w.push_back(d);
      w.push_back(n2);
      return w;
    });
  };
  const auto base = run(1);
  for (int t : kThreadCounts) {
    expect_bitwise_equal(run(t), base, "blas1");
  }
}

TEST(ThreadsDeterminism, SmoothersBitIdentical) {
  Rng rng(0x5300);
  const la::Csr a = random_spd(rng, 6000, 5);
  const std::vector<real> b = random_vector(rng, a.nrows);
  const std::vector<real> x0 = random_vector(rng, a.nrows);

  auto run = [&](int t) {
    return with_threads(t, [&] {
      std::vector<std::vector<real>> out;
      {
        const la::JacobiSmoother jac(a, 0.7);
        std::vector<real> x = x0;
        jac.smooth(b, x);
        jac.smooth(b, x);
        out.push_back(x);
      }
      {
        // Constructor included: the power-iteration eigenvalue estimate
        // must itself be thread-count invariant.
        const la::ChebyshevSmoother cheb(a, 4);
        std::vector<real> x = x0;
        cheb.smooth(b, x);
        cheb.smooth(b, x);
        out.push_back(x);
      }
      {
        const la::BlockJacobiSmoother bj(
            a, la::contiguous_blocks(a.nrows, 37), 0.6);
        std::vector<real> x = x0;
        bj.smooth(b, x);
        bj.smooth(b, x);
        out.push_back(x);
      }
      return out;
    });
  };
  const auto base = run(1);
  for (int t : kThreadCounts) {
    const auto got = run(t);
    expect_bitwise_equal(got[0], base[0], "jacobi");
    expect_bitwise_equal(got[1], base[1], "chebyshev");
    expect_bitwise_equal(got[2], base[2], "block jacobi");
  }
}

TEST(ThreadsDeterminism, GalerkinTripleProductBitIdentical) {
  Rng rng(0x6A1);
  const la::Csr a = random_spd(rng, 12000, 6);
  const la::Csr r = random_restriction(rng, 3000, a.nrows);
  auto run = [&](int t) {
    return with_threads(t, [&] { return la::galerkin_product(r, a); });
  };
  const la::Csr base = run(1);
  for (int t : kThreadCounts) {
    const la::Csr got = run(t);
    ASSERT_EQ(got.nrows, base.nrows);
    ASSERT_EQ(got.rowptr, base.rowptr) << "t=" << t;
    ASSERT_EQ(got.colidx, base.colidx) << "t=" << t;
    expect_bitwise_equal(got.vals, base.vals, "galerkin vals");
  }
}

TEST(ThreadsDeterminism, FeAssemblyBitIdentical) {
  const mesh::Mesh mesh = mesh::box_hex(6, 6, 6, {0, 0, 0}, {1, 1, 1});
  fem::DofMap dofmap(mesh.num_vertices());
  dofmap.fix_all(
      mesh.vertices_where([](const Vec3& p) { return p.z < 1e-12; }), 0);
  dofmap.finalize();
  Rng rng(0xA55E);
  const std::vector<real> u = random_vector(rng, dofmap.num_dofs());

  auto run = [&](int t) {
    return with_threads(t, [&] {
      fem::FeProblem prob(mesh, {fem::Material{}}, dofmap);
      return prob.assemble(u, /*want_stiffness=*/true);
    });
  };
  const fem::AssemblyResult base = run(1);
  for (int t : kThreadCounts) {
    const fem::AssemblyResult got = run(t);
    ASSERT_EQ(got.stiffness.rowptr, base.stiffness.rowptr) << "t=" << t;
    ASSERT_EQ(got.stiffness.colidx, base.stiffness.colidx) << "t=" << t;
    expect_bitwise_equal(got.stiffness.vals, base.stiffness.vals,
                         "stiffness vals");
    expect_bitwise_equal(got.f_int, base.f_int, "f_int");
    expect_bitwise_equal(got.bc_coupling, base.bc_coupling, "bc_coupling");
  }
}

TEST(ThreadsDeterminism, FlopAccountingIsThreadCountInvariant) {
  Rng rng(0xF20);
  const la::Csr a = random_spd(rng, 20000, 6);
  const std::vector<real> x = random_vector(rng, a.ncols);
  std::vector<real> y(a.nrows);
  std::int64_t base = -1;
  for (int t : kThreadCounts) {
    with_threads(t, [&] {
      const FlopWindow w;
      a.spmv(x, y);
      la::dot(x, x);
      const std::int64_t f = w.flops();
      if (base < 0) base = f;
      EXPECT_EQ(f, base) << "flop count drifted at t=" << t;
      return 0;
    });
  }
  // And the absolute count is what the kernels advertise.
  EXPECT_EQ(base, 2 * a.nnz() + 2 * static_cast<std::int64_t>(x.size()));
}

}  // namespace
}  // namespace prom
