// The single V-cycle / full-multigrid implementation, templated over a
// CycleView — a thin adapter exposing one multigrid hierarchy's levels as
// local-block operations. The serial mg::Hierarchy and the distributed
// dla::DistHierarchy both provide a view, so Figure 1's algorithm exists
// exactly once; only the level operations (smooth, SpMV, restriction,
// coarse solve) know whether they communicate.
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <span>
#include <vector>

#include "common/config.h"
#include "common/error.h"
#include "la/multivec.h"
#include "la/vec.h"
#include "obs/trace.h"

namespace prom::mg {

enum class CycleKind : std::uint8_t { kV, kFmg };

/// What the cycle templates require of a hierarchy view. All vectors are
/// the local blocks of level vectors (the whole vectors on the serial
/// view); `restrict_to(l, xf, xc)` applies level l's restriction R_l to a
/// level l-1 vector, `prolong(l, xc, xf)` applies R_l^T (overwrite), and
/// `coarse_solve` solves on the coarsest level.
template <class V>
concept CycleView = requires(const V& h, int l, std::span<const real> c,
                             std::span<real> m) {
  { h.num_levels() } -> std::convertible_to<int>;
  { h.local_n(l) } -> std::convertible_to<idx>;
  { h.pre_smooth() } -> std::convertible_to<int>;
  { h.post_smooth() } -> std::convertible_to<int>;
  h.smooth(l, c, m);
  h.apply_a(l, c, m);
  h.restrict_to(l, c, m);
  h.prolong(l, c, m);
  h.coarse_solve(c, m);
};

/// One V-cycle at `level` for A_level x = b, improving x in place
/// (Figure 1 of the paper: pre-smooth, restrict residual, recurse,
/// prolongate correction, post-smooth; direct solve on the coarsest grid).
template <CycleView V>
void vcycle_any(const V& h, int level, std::span<const real> b,
                std::span<real> x) {
  PROM_CHECK(static_cast<idx>(b.size()) == h.local_n(level) &&
             static_cast<idx>(x.size()) == h.local_n(level));

  // Coarse-level agglomeration (views exposing level_inactive): a rank
  // outside this level's active set holds no rows and no exchange-plan
  // roles at or below it, so the whole subtree is skipped. Its share of
  // the level boundary — the restriction / prolongation exchange — runs
  // in the caller's frame, where it still holds plan roles.
  if constexpr (requires {
                  { h.level_inactive(level) } -> std::convertible_to<bool>;
                }) {
    if (h.level_inactive(level)) return;
  }

  if (level + 1 == h.num_levels()) {
    const obs::Span span("mg.coarse_solve", level);
    h.coarse_solve(b, x);
    return;
  }

  {
    const obs::Span span("mg.smooth", level);
    for (int s = 0; s < h.pre_smooth(); ++s) h.smooth(level, b, x);
  }

  // Residual and its restriction.
  std::vector<real> r(b.size());
  {
    const obs::Span span("mg.residual", level);
    h.apply_a(level, x, r);
    la::waxpby(1, b, -1, r, r);
  }
  std::vector<real> rc(static_cast<std::size_t>(h.local_n(level + 1)));
  {
    const obs::Span span("mg.restrict", level);
    h.restrict_to(level + 1, r, rc);
  }

  // Coarse-grid correction.
  std::vector<real> xc(rc.size(), 0);
  vcycle_any(h, level + 1, rc, xc);

  // Prolongate (R^T) and add.
  {
    const obs::Span span("mg.prolong", level);
    std::vector<real> dx(x.size());
    h.prolong(level + 1, xc, dx);
    la::axpy(1, dx, x);
  }

  {
    const obs::Span span("mg.smooth", level);
    for (int s = 0; s < h.post_smooth(); ++s) h.smooth(level, b, x);
  }
}

/// One full multigrid cycle for A_0 x = b starting from zero; returns x.
template <CycleView V>
std::vector<real> fmg_any(const V& h, std::span<const real> b) {
  const int nl = h.num_levels();
  // Restrict the right-hand side to every level.
  std::vector<std::vector<real>> bs(static_cast<std::size_t>(nl));
  bs[0].assign(b.begin(), b.end());
  for (int l = 1; l < nl; ++l) {
    const obs::Span span("mg.restrict", l - 1);
    bs[l].resize(static_cast<std::size_t>(h.local_n(l)));
    h.restrict_to(l, bs[l - 1], bs[l]);
  }

  // Coarsest solve, then work upward: prolongate and V-cycle at each grid.
  std::vector<real> x(bs[nl - 1].size(), 0);
  vcycle_any(h, nl - 1, bs[nl - 1], x);
  for (int l = nl - 2; l >= 0; --l) {
    std::vector<real> xf(static_cast<std::size_t>(h.local_n(l)));
    {
      const obs::Span span("mg.prolong", l);
      h.prolong(l + 1, x, xf);
    }
    x = std::move(xf);
    vcycle_any(h, l, bs[l], x);
  }
  return x;
}

/// One cycle of the requested kind as a preconditioner application
/// y = M^{-1} x (the MG-PCG preconditioner body on every backend).
template <CycleView V>
void apply_cycle(const V& h, CycleKind kind, std::span<const real> x,
                 std::span<real> y) {
  if (kind == CycleKind::kFmg) {
    const std::vector<real> z = fmg_any(h, x);
    std::copy(z.begin(), z.end(), y.begin());
  } else {
    std::fill(y.begin(), y.end(), real{0});
    vcycle_any(h, 0, x, y);
  }
}

/// Column-blocked extension of CycleView: the same level operations over
/// k columns at once, column j bitwise identical to the scalar operation
/// on that column.
template <class V>
concept MultiCycleView =
    CycleView<V> && requires(const V& h, int l, const la::MultiVec& c,
                             la::MultiVec& m) {
      h.smooth_mv(l, c, m);
      h.apply_a_mv(l, c, m);
      h.restrict_to_mv(l, c, m);
      h.prolong_mv(l, c, m);
      h.coarse_solve_mv(c, m);
    };

/// Column-blocked V-cycle: the scalar vcycle_any over k columns with one
/// exchange per level operation; column j bitwise equals `vcycle_any` on
/// that column (the per-column BLAS-1 updates run in the scalar order).
template <MultiCycleView V>
void vcycle_any_mv(const V& h, int level, const la::MultiVec& b,
                   la::MultiVec& x) {
  const int k = b.cols();
  PROM_CHECK(b.rows() == h.local_n(level) && x.rows() == h.local_n(level) &&
             x.cols() == k);

  // Same agglomeration guard as the scalar vcycle_any.
  if constexpr (requires {
                  { h.level_inactive(level) } -> std::convertible_to<bool>;
                }) {
    if (h.level_inactive(level)) return;
  }

  if (level + 1 == h.num_levels()) {
    const obs::Span span("mg.coarse_solve", level);
    h.coarse_solve_mv(b, x);
    return;
  }

  {
    const obs::Span span("mg.smooth", level);
    for (int s = 0; s < h.pre_smooth(); ++s) h.smooth_mv(level, b, x);
  }

  // Residual and its restriction.
  la::MultiVec r(h.local_n(level), k);
  {
    const obs::Span span("mg.residual", level);
    h.apply_a_mv(level, x, r);
    for (int j = 0; j < k; ++j) {
      la::waxpby(1, b.col(j), -1, r.col(j), r.col(j));
    }
  }
  la::MultiVec rc(h.local_n(level + 1), k);
  {
    const obs::Span span("mg.restrict", level);
    h.restrict_to_mv(level + 1, r, rc);
  }

  // Coarse-grid correction.
  la::MultiVec xc(h.local_n(level + 1), k);
  vcycle_any_mv(h, level + 1, rc, xc);

  // Prolongate (R^T) and add.
  {
    const obs::Span span("mg.prolong", level);
    la::MultiVec dx(h.local_n(level), k);
    h.prolong_mv(level + 1, xc, dx);
    for (int j = 0; j < k; ++j) la::axpy(1, dx.col(j), x.col(j));
  }

  {
    const obs::Span span("mg.smooth", level);
    for (int s = 0; s < h.post_smooth(); ++s) h.smooth_mv(level, b, x);
  }
}

/// Column-blocked full multigrid cycle; column j bitwise equals `fmg_any`
/// on that column.
template <MultiCycleView V>
la::MultiVec fmg_any_mv(const V& h, const la::MultiVec& b) {
  const int nl = h.num_levels();
  const int k = b.cols();
  // Restrict the right-hand side to every level.
  std::vector<la::MultiVec> bs(static_cast<std::size_t>(nl));
  bs[0].resize(b.rows(), k);
  for (int j = 0; j < k; ++j) {
    std::copy(b.col(j).begin(), b.col(j).end(), bs[0].col(j).begin());
  }
  for (int l = 1; l < nl; ++l) {
    const obs::Span span("mg.restrict", l - 1);
    bs[l].resize(h.local_n(l), k);
    h.restrict_to_mv(l, bs[l - 1], bs[l]);
  }

  // Coarsest solve, then work upward: prolongate and V-cycle at each grid.
  la::MultiVec x(h.local_n(nl - 1), k);
  vcycle_any_mv(h, nl - 1, bs[nl - 1], x);
  for (int l = nl - 2; l >= 0; --l) {
    la::MultiVec xf(h.local_n(l), k);
    {
      const obs::Span span("mg.prolong", l);
      h.prolong_mv(l + 1, x, xf);
    }
    x = std::move(xf);
    vcycle_any_mv(h, l, bs[l], x);
  }
  return x;
}

/// Column-blocked preconditioner application; column j bitwise equals
/// `apply_cycle` on that column.
template <MultiCycleView V>
void apply_cycle_mv(const V& h, CycleKind kind, const la::MultiVec& x,
                    la::MultiVec& y) {
  const int k = x.cols();
  if (kind == CycleKind::kFmg) {
    const la::MultiVec z = fmg_any_mv(h, x);
    for (int j = 0; j < k; ++j) {
      std::copy(z.col(j).begin(), z.col(j).end(), y.col(j).begin());
    }
  } else {
    for (int j = 0; j < k; ++j) {
      std::fill(y.col(j).begin(), y.col(j).end(), real{0});
    }
    vcycle_any_mv(h, 0, x, y);
  }
}

}  // namespace prom::mg
