// Figure 7 reproduction: "Fine (input) grid and coarse grids for problem
// in 3D elasticity" — the automatically generated grid hierarchy. Prints
// per-level statistics (vertices, reduction ratios, classification, lost
// vertices) for the concentric-spheres problem and writes each level's
// mesh to fig7_level<k>.vtk (level 0 = input hexes, deeper levels =
// Delaunay tet remeshes of the MIS vertex sets).
#include <cstdio>
#include <cstdlib>

#include "app/driver.h"
#include "coarsen/coarsen.h"
#include "mesh/vtk.h"

using namespace prom;

int main() {
  mesh::SphereInCubeParams params;
  params.base_core_layers = 1;
  params.base_outer_layers = 1;
  const app::ModelProblem model = app::make_sphere_problem(params, 1.2);
  std::printf("Figure 7: automatic grid hierarchy for the 3D elasticity "
              "problem\n");
  std::printf("input grid: %d vertices, %d hex cells\n\n",
              model.mesh.num_vertices(), model.mesh.num_cells());
  mesh::write_vtk("fig7_level0.vtk", model.mesh);

  std::printf("%-6s %-10s %-10s %-11s %-7s %-22s %-12s\n", "level",
              "vertices", "cells", "reduction", "lost", "classes i/s/e/c",
              "edges cut");
  std::vector<Vec3> coords = model.mesh.coords();
  graph::Graph vgraph = model.mesh.vertex_graph();
  coarsen::Classification cls = coarsen::classify_mesh(model.mesh);
  {
    const auto h = cls.type_histogram();
    std::printf("%-6d %-10d %-10d %-11s %-7s %d/%d/%d/%d %-12s\n", 0,
                static_cast<idx>(coords.size()), model.mesh.num_cells(), "-",
                "-", h[0], h[1], h[2], h[3], "-");
  }
  for (int l = 0; l < 3; ++l) {
    const coarsen::CoarsenLevelResult level =
        coarsen::coarsen_level(coords, vgraph, cls, l, {});
    const auto h = level.coarse_cls.type_histogram();
    std::printf("%-6d %-10zu %-10d 1/%-9.2f %-7zu %d/%d/%d/%d %-12lld\n",
                l + 1, level.selected.size(),
                level.coarse_mesh.num_cells(),
                static_cast<double>(coords.size()) / level.selected.size(),
                level.lost.size(), h[0], h[1], h[2], h[3],
                static_cast<long long>(level.graph_stats.edges_removed));
    char name[64];
    std::snprintf(name, sizeof name, "fig7_level%d.vtk", l + 1);
    mesh::write_vtk(name, level.coarse_mesh);
    // Advance.
    std::vector<Vec3> next;
    for (idx v : level.selected) next.push_back(coords[v]);
    coords = std::move(next);
    vgraph = level.coarse_mesh.vertex_graph();
    cls = level.coarse_cls;
    if (coords.size() < 30) break;
  }
  std::printf(
      "\nwrote fig7_level0..3.vtk.  shape claims: vertex reduction per\n"
      "level within the paper's uniform-hex band (1/8 .. 1/27 interior,\n"
      "less on surface-dominated coarse grids); boundary and interface\n"
      "vertices survive preferentially (the articulation heuristic).\n");
  return 0;
}
