#include "obs/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "common/error.h"

namespace prom::obs::json {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value document() {
    Value v = value();
    skip_ws();
    PROM_CHECK_MSG(pos_ == text_.size(), "json: trailing characters");
    return v;
  }

 private:
  char peek() {
    PROM_CHECK_MSG(pos_ < text_.size(), "json: unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    PROM_CHECK_MSG(take() == c, std::string("json: expected '") + c + "'");
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value value() {
    skip_ws();
    const char c = peek();
    Value v;
    switch (c) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        v.kind_ = Value::Kind::kString;
        v.string_ = string();
        return v;
      case 't':
        PROM_CHECK_MSG(consume_literal("true"), "json: bad literal");
        v.kind_ = Value::Kind::kBool;
        v.bool_ = true;
        return v;
      case 'f':
        PROM_CHECK_MSG(consume_literal("false"), "json: bad literal");
        v.kind_ = Value::Kind::kBool;
        v.bool_ = false;
        return v;
      case 'n':
        PROM_CHECK_MSG(consume_literal("null"), "json: bad literal");
        return v;
      default:
        return number();
    }
  }

  Value object() {
    expect('{');
    Value v;
    v.kind_ = Value::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.members_.emplace_back(std::move(key), value());
      skip_ws();
      const char c = take();
      if (c == '}') return v;
      PROM_CHECK_MSG(c == ',', "json: expected ',' or '}' in object");
    }
  }

  Value array() {
    expect('[');
    Value v;
    v.kind_ = Value::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.items_.push_back(value());
      skip_ws();
      const char c = take();
      if (c == ']') return v;
      PROM_CHECK_MSG(c == ',', "json: expected ',' or ']' in array");
    }
  }

  /// Four hex digits of a \uXXXX escape.
  unsigned hex4() {
    PROM_CHECK_MSG(pos_ + 4 <= text_.size(), "json: truncated \\u");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = take();
      code <<= 4;
      if (h >= '0' && h <= '9') {
        code += static_cast<unsigned>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        code += static_cast<unsigned>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        code += static_cast<unsigned>(h - 'A' + 10);
      } else {
        PROM_CHECK_MSG(false, "json: bad \\u escape");
      }
    }
    return code;
  }

  /// UTF-8 encoding of one code point (<= 0x10FFFF by construction).
  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = take();
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out += esc;
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          unsigned code = hex4();
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: the low half must follow as its own \uXXXX.
            PROM_CHECK_MSG(pos_ + 2 <= text_.size() && take() == '\\' &&
                               take() == 'u',
                           "json: unpaired high surrogate");
            const unsigned lo = hex4();
            PROM_CHECK_MSG(lo >= 0xDC00 && lo <= 0xDFFF,
                           "json: unpaired high surrogate");
            code = 0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
          } else {
            PROM_CHECK_MSG(!(code >= 0xDC00 && code <= 0xDFFF),
                           "json: unpaired low surrogate");
          }
          append_utf8(out, code);
          break;
        }
        default:
          PROM_CHECK_MSG(false, "json: bad escape");
      }
    }
  }

  Value number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    PROM_CHECK_MSG(pos_ > start, "json: expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    PROM_CHECK_MSG(end == token.c_str() + token.size(), "json: bad number");
    Value v;
    v.kind_ = Value::Kind::kNumber;
    v.number_ = d;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

Value Value::parse(std::string_view text) { return Parser(text).document(); }

bool Value::as_bool() const {
  PROM_CHECK_MSG(kind_ == Kind::kBool, "json: not a bool");
  return bool_;
}

double Value::as_number() const {
  PROM_CHECK_MSG(kind_ == Kind::kNumber, "json: not a number");
  return number_;
}

const std::string& Value::as_string() const {
  PROM_CHECK_MSG(kind_ == Kind::kString, "json: not a string");
  return string_;
}

const std::vector<Value>& Value::items() const {
  PROM_CHECK_MSG(kind_ == Kind::kArray, "json: not an array");
  return items_;
}

const std::vector<std::pair<std::string, Value>>& Value::members() const {
  PROM_CHECK_MSG(kind_ == Kind::kObject, "json: not an object");
  return members_;
}

const Value* Value::find(std::string_view key) const {
  PROM_CHECK_MSG(kind_ == Kind::kObject, "json: not an object");
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  const Value* v = find(key);
  PROM_CHECK_MSG(v != nullptr, "json: missing key: " + std::string(key));
  return *v;
}

Value parse_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  PROM_CHECK_MSG(f != nullptr, "json: cannot open " + path);
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return Value::parse(text);
}

void escape_into(std::string& out, std::string_view s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
    } else {
      out += c;
    }
  }
}

std::string escaped(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  escape_into(out, s);
  return out;
}

}  // namespace prom::obs::json
