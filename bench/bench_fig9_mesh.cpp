// Figure 9 reproduction: the concentric-spheres model problem meshes of
// the scaled series (the paper shows the 79,679-dof base mesh; ours are
// scaled down per DESIGN.md substitution 2). Prints per-case mesh
// statistics and writes the base mesh to fig9_mesh.vtk for visual
// comparison with the paper's Figure 9.
#include <cstdio>
#include <cstdlib>

#include "app/driver.h"
#include "coarsen/classify.h"
#include "mesh/vtk.h"

using namespace prom;

int main() {
  const bool full = std::getenv("PROM_BENCH_FULL") != nullptr;
  std::printf("Figure 9: scaled concentric-spheres meshes\n");
  std::printf("%-6s %-10s %-10s %-10s %-12s %-10s %-22s\n", "case",
              "resol.", "vertices", "cells", "dofs", "hard %",
              "classification i/s/e/c");
  const auto series = app::scaled_series(full ? 5 : 3);
  for (std::size_t i = 0; i < series.size(); ++i) {
    const app::ModelProblem p =
        app::make_sphere_problem(series[i].params, 1.2);
    idx hard = 0;
    for (idx e = 0; e < p.mesh.num_cells(); ++e) {
      if (p.mesh.material(e) == series[i].params.hard_material) ++hard;
    }
    const coarsen::Classification cls = coarsen::classify_mesh(p.mesh);
    const auto h = cls.type_histogram();
    std::printf("%-6zu %-10d %-10d %-10d %-12d %-10.1f %d/%d/%d/%d\n", i,
                mesh::sphere_in_cube_resolution(series[i].params),
                p.mesh.num_vertices(), p.mesh.num_cells(),
                p.dofmap.num_free(),
                100.0 * hard / p.mesh.num_cells(), h[0], h[1], h[2], h[3]);
    if (i == 0) {
      mesh::write_vtk("fig9_mesh.vtk", p.mesh);
    }
  }
  std::printf("\nwrote fig9_mesh.vtk (base case, materials as cell data)\n");
  std::printf("(paper's base case: 79,679 dofs; series up to 39.2M dofs)\n");
  return 0;
}
