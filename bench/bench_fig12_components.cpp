// Figure 12 reproduction: scaled efficiency of all major components of
// one linear solve (solve for x, matrix setup, fine grid creation, mesh
// setup, and total), normalized to the base case as
//   e = (base per-unknown wall time) / (case per-unknown wall time),
// which is the paper's 2/p * T(2)/T(p) * N(p)/N(2) normalization adapted
// to a fixed host (the per-rank model covers the communication part in
// Figure 11's bench). Also prints the level-resolved cycle-component
// breakdown (smooth / residual / restrict / prolong / coarse solve) of
// the largest case.
//
// All timings come out of the obs tracer: each case writes report.json
// and the tables are printed from the parsed file.
//
// Environment: PROM_BENCH_FULL=1 enlarges the series; PROM_BENCH_SMOKE=1
// shrinks it to the two smallest cases (the CI smoke lane).
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "app/driver.h"
#include "obs/report.h"

using namespace prom;

namespace {

double per_unknown(double seconds, idx unknowns) {
  return seconds / static_cast<double>(unknowns);
}

}  // namespace

int main() {
  const bool full = std::getenv("PROM_BENCH_FULL") != nullptr;
  const bool smoke = std::getenv("PROM_BENCH_SMOKE") != nullptr;
  const auto series = app::scaled_series(smoke ? 2 : (full ? 4 : 3));

  std::vector<app::LinearStudyReport> reports;
  std::vector<obs::Report> obs_reports;
  for (const app::ScaledCase& sc : series) {
    const app::ModelProblem problem =
        app::make_sphere_problem(sc.params, 1.2);
    app::LinearStudyConfig cfg;
    cfg.nranks = sc.ranks;
    cfg.rtol = 1e-4;
    cfg.report_path = "report.json";
    reports.push_back(app::run_linear_study(problem, cfg));
    obs_reports.push_back(obs::Report::read_json("report.json"));
  }
  const app::LinearStudyReport& base = reports.front();
  const obs::Report& base_rep = obs_reports.front();

  struct Row {
    idx unknowns;
    int ranks;
    double solve, matrix_setup, fine_grid, mesh_setup, total;
  };
  std::vector<Row> rows;

  auto total_seconds = [](const obs::Report& rep) {
    return rep.phase_seconds("partition") + rep.phase_seconds("fine_grid") +
           rep.phase_seconds("mesh_setup") +
           rep.phase_seconds("matrix_setup") + rep.phase_seconds("solve");
  };

  std::printf("Figure 12: per-component scaled efficiencies "
              "(1.0 = perfect; > 1.0 = super-linear)\n");
  std::printf("%-10s %-7s %-10s %-11s %-11s %-11s %-9s\n", "equations",
              "ranks", "solve x", "mat setup", "fine grid", "mesh setup",
              "total");
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const app::LinearStudyReport& r = reports[i];
    const obs::Report& rep = obs_reports[i];
    auto eff = [&](double base_t, double t) {
      const double b = per_unknown(base_t, base.unknowns);
      const double c = per_unknown(t, r.unknowns);
      return c > 0 ? b / c : 0.0;
    };
    const Row row{
        r.unknowns,
        r.ranks,
        eff(base_rep.phase_seconds("solve"), rep.phase_seconds("solve")),
        eff(base_rep.phase_seconds("matrix_setup"),
            rep.phase_seconds("matrix_setup")),
        eff(base_rep.phase_seconds("fine_grid"),
            rep.phase_seconds("fine_grid")),
        eff(base_rep.phase_seconds("mesh_setup"),
            rep.phase_seconds("mesh_setup")),
        eff(total_seconds(base_rep), total_seconds(rep))};
    rows.push_back(row);
    std::printf("%-10d %-7d %-10.2f %-11.2f %-11.2f %-11.2f %-9.2f\n",
                row.unknowns, row.ranks, row.solve, row.matrix_setup,
                row.fine_grid, row.mesh_setup, row.total);
  }
  std::printf(
      "\nshape claims vs the paper's Figure 12: every component's "
      "efficiency\nstays within a band around 1.0 as the problem scales "
      "(all phases scale);\nthe solve's efficiency benefits from the "
      "super-linear iteration/flop terms.\n");

  // Level-resolved cycle components of the largest case (Figure 12's
  // companion breakdown: where the cycle's time goes, per level).
  const obs::Report& last = obs_reports.back();
  std::printf("\ncycle components of the largest case "
              "(seconds summed over ranks and cycles)\n");
  std::printf("%-6s %-16s %-12s %-12s %-10s\n", "level", "component",
              "seconds", "max rank s", "count");
  for (const obs::ComponentEntry& c : last.components) {
    if (c.name.rfind("mg.", 0) != 0) continue;
    std::printf("%-6d %-16s %-12.4f %-12.4f %-10lld\n", c.level,
                c.name.c_str(), c.seconds, c.max_rank_seconds,
                static_cast<long long>(c.count));
  }

  std::FILE* json = std::fopen("BENCH_fig12_components.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_fig12_components.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"fig12_components\",\n  \"cases\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(json,
                 "    {\"unknowns\": %d, \"ranks\": %d, \"eff_solve\": %.4f, "
                 "\"eff_matrix_setup\": %.4f, \"eff_fine_grid\": %.4f, "
                 "\"eff_mesh_setup\": %.4f, \"eff_total\": %.4f}%s\n",
                 r.unknowns, r.ranks, r.solve, r.matrix_setup, r.fine_grid,
                 r.mesh_setup, r.total, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n  \"largest_case_components\": [\n");
  bool first = true;
  for (const obs::ComponentEntry& c : last.components) {
    if (c.name.rfind("mg.", 0) != 0) continue;
    std::fprintf(json,
                 "%s    {\"name\": \"%s\", \"level\": %d, \"seconds\": %.6f, "
                 "\"max_rank_seconds\": %.6f, \"count\": %lld}",
                 first ? "" : ",\n", c.name.c_str(), c.level, c.seconds,
                 c.max_rank_seconds, static_cast<long long>(c.count));
    first = false;
  }
  std::fprintf(json, "\n  ]\n}\n");
  std::fclose(json);
  std::printf(
      "wrote BENCH_fig12_components.json (timings read from report.json)\n");
  return 0;
}
