// The solve service: fingerprint-keyed hierarchy caching (hit/miss/LRU
// eviction semantics) and column-blocked multi-RHS solves. The bitwise
// gates are the determinism contract: column j of a k-RHS solve is
// identical to a standalone solve of that RHS at any kernel-thread count,
// rank count, and matrix format.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <span>
#include <vector>

#include "app/service.h"
#include "common/error.h"
#include "common/parallel.h"
#include "dla/halo.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace prom::app {
namespace {

struct EnvGuard {
  ~EnvGuard() {
    common::set_kernel_threads(0);
    dla::set_halo_mode(dla::HaloMode::kOverlap);
  }
};

constexpr int kThreadCounts[] = {1, 2, 8};

ServiceConfig small_config(int nranks, mg::MatrixFormat format) {
  ServiceConfig sc;
  sc.nranks = nranks;
  sc.format = format;
  sc.mg.coarsest_max_dofs = 60;  // multi-level hierarchy on a small box
  return sc;
}

/// Distinct, smoothly varying right-hand sides so the columns converge at
/// different iteration counts (exercises per-column masking).
la::MultiVec make_rhs_block(idx n, int k) {
  la::MultiVec b(n, k);
  for (int j = 0; j < k; ++j) {
    real* bj = b.col_data(j);
    for (idx i = 0; i < n; ++i) {
      bj[i] = std::sin(real{0.01} * static_cast<real>(i + 1) *
                       static_cast<real>(j + 1)) +
              real{0.1} * static_cast<real>(j + 1);
    }
  }
  return b;
}

void expect_bitwise_equal(std::span<const real> a, std::span<const real> b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(real)), 0);
}

/// Solves each column of `rhs` standalone and checks the k-RHS solve of
/// the full block reproduces every column bitwise (solutions and Krylov
/// results alike).
void check_blocked_matches_single(SolveService& service,
                                  const la::MultiVec& rhs) {
  SolveRequest req;
  req.mesh_id = "box";
  const int k = rhs.cols();

  std::vector<SolveResponse> singles;
  for (int j = 0; j < k; ++j) {
    req.rhs = la::MultiVec(rhs.rows(), 1);
    std::copy(rhs.col(j).begin(), rhs.col(j).end(), req.rhs.col(0).begin());
    singles.push_back(service.solve(req));
  }

  req.rhs = rhs;
  const SolveResponse multi = service.solve(req);
  ASSERT_EQ(multi.results.size(), static_cast<std::size_t>(k));
  for (int j = 0; j < k; ++j) {
    SCOPED_TRACE("column " + std::to_string(j));
    EXPECT_EQ(multi.results[j].iterations, singles[j].results[0].iterations);
    EXPECT_EQ(multi.results[j].converged, singles[j].results[0].converged);
    EXPECT_EQ(multi.results[j].final_relres,
              singles[j].results[0].final_relres);
    expect_bitwise_equal(multi.solutions.col(j),
                         singles[j].solutions.col(0));
  }
}

TEST(ServiceCache, HitMissAndFingerprintSemantics) {
  SolveService service(small_config(2, mg::MatrixFormat::kCsr));
  service.register_problem("box", make_box_problem(4));

  const EntryHandle first = service.acquire("box");
  EXPECT_EQ(service.cache_misses(), 1);
  EXPECT_EQ(service.cache_hits(), 0);
  const EntryHandle second = service.acquire("box");
  EXPECT_EQ(service.cache_misses(), 1);
  EXPECT_EQ(service.cache_hits(), 1);
  EXPECT_EQ(first.get(), second.get());  // same cached setup
  EXPECT_EQ(service.cache_size(), 1u);

  // Any option that shapes the hierarchy must change the key: distinct
  // options resolve to distinct cache entries.
  const std::string base = service.fingerprint("box");
  EXPECT_NE(base, service.fingerprint("other-mesh"));
  {
    ServiceConfig sc = small_config(2, mg::MatrixFormat::kBsr3);
    EXPECT_NE(base, SolveService(sc).fingerprint("box"));
  }
  {
    ServiceConfig sc = small_config(4, mg::MatrixFormat::kCsr);
    EXPECT_NE(base, SolveService(sc).fingerprint("box"));
  }
  {
    ServiceConfig sc = small_config(2, mg::MatrixFormat::kCsr);
    sc.cycle = mg::CycleKind::kV;
    EXPECT_NE(base, SolveService(sc).fingerprint("box"));
  }
  {
    ServiceConfig sc = small_config(2, mg::MatrixFormat::kCsr);
    sc.mg.smoother = mg::SmootherKind::kChebyshev;
    EXPECT_NE(base, SolveService(sc).fingerprint("box"));
  }
  {
    ServiceConfig sc = small_config(2, mg::MatrixFormat::kCsr);
    sc.mg.coarsen.seed ^= 1;
    EXPECT_NE(base, SolveService(sc).fingerprint("box"));
  }
  // The identical config reproduces the identical key.
  EXPECT_EQ(base,
            SolveService(small_config(2, mg::MatrixFormat::kCsr))
                .fingerprint("box"));
}

TEST(ServiceCache, SolveReportsHitAndReusesSetup) {
  SolveService service(small_config(2, mg::MatrixFormat::kCsr));
  service.register_problem("box", make_box_problem(4));

  SolveRequest req;
  req.mesh_id = "box";
  const SolveResponse cold = service.solve(req);
  EXPECT_FALSE(cold.cache_hit);
  const SolveResponse warm = service.solve(req);
  EXPECT_TRUE(warm.cache_hit);
  // Same setup, same rhs, workspace reuse: bitwise repeatable.
  ASSERT_EQ(cold.results.size(), 1u);
  ASSERT_EQ(warm.results.size(), 1u);
  EXPECT_TRUE(cold.results[0].converged);
  EXPECT_EQ(cold.results[0].iterations, warm.results[0].iterations);
  expect_bitwise_equal(cold.solutions.col(0), warm.solutions.col(0));
}

TEST(ServiceCache, CachedRequestSkipsSetupPhases) {
  SolveService service(small_config(2, mg::MatrixFormat::kCsr));
  service.register_problem("box", make_box_problem(4));
  SolveRequest req;
  req.mesh_id = "box";
  service.solve(req);  // cold: populates the cache

  obs::Tracer& tracer = obs::Tracer::instance();
  const bool was_tracing = obs::tracing();
  tracer.set_enabled(true);
  const std::int64_t mark = obs::Tracer::now_ns();
  const SolveResponse warm = service.solve(req);
  tracer.set_enabled(was_tracing);
  const obs::Report rep = obs::build_report(mark);

  EXPECT_TRUE(warm.cache_hit);
  // A cached request runs no setup at all: none of the setup phases may
  // appear in its tracing window, while the solve phase must.
  EXPECT_EQ(rep.phase("partition"), nullptr);
  EXPECT_EQ(rep.phase("fine_grid"), nullptr);
  EXPECT_EQ(rep.phase("mesh_setup"), nullptr);
  EXPECT_EQ(rep.phase("matrix_setup"), nullptr);
  EXPECT_NE(rep.phase("solve"), nullptr);
}

TEST(ServiceCache, EvictionLeavesInFlightHandlesValid) {
  ServiceConfig sc = small_config(2, mg::MatrixFormat::kCsr);
  sc.cache_capacity = 1;
  SolveService service(sc);
  service.register_problem("a", make_box_problem(4));
  service.register_problem("b", make_box_problem(5));

  const EntryHandle a = service.acquire("a");
  SolveRequest req_a;
  req_a.mesh_id = "a";
  const SolveResponse before = service.solve_with(a, req_a);

  // Acquiring "b" evicts "a" from the capacity-1 cache...
  service.acquire("b");
  EXPECT_EQ(service.cache_size(), 1u);
  EXPECT_EQ(service.fingerprint("b"), (*service.acquire("b")).key);

  // ...but the held handle still carries a fully valid setup.
  const SolveResponse after = service.solve_with(a, req_a);
  EXPECT_EQ(before.results[0].iterations, after.results[0].iterations);
  expect_bitwise_equal(before.solutions.col(0), after.solutions.col(0));

  // Re-acquiring "a" is a rebuild, not a resurrection.
  const std::int64_t misses = service.cache_misses();
  const EntryHandle a2 = service.acquire("a");
  EXPECT_EQ(service.cache_misses(), misses + 1);
  EXPECT_NE(a.get(), a2.get());
}

TEST(ServiceSolve, BlockedMatchesSinglePerFormatAndThreads) {
  const EnvGuard guard;
  const mg::MatrixFormat formats[] = {
      mg::MatrixFormat::kCsr, mg::MatrixFormat::kBsr3, mg::MatrixFormat::kMf};
  for (const mg::MatrixFormat format : formats) {
    SCOPED_TRACE("format " + std::to_string(static_cast<int>(format)));
    SolveService service(small_config(2, format));
    service.register_problem("box", make_box_problem(5));
    const idx n = service.acquire("box")->unknowns;
    const la::MultiVec rhs = make_rhs_block(n, 4);
    for (const int t : kThreadCounts) {
      SCOPED_TRACE("threads " + std::to_string(t));
      common::set_kernel_threads(t);
      check_blocked_matches_single(service, rhs);
    }
  }
}

TEST(ServiceSolve, BlockedMatchesSingleAcrossRanks) {
  const EnvGuard guard;
  for (const int p : {1, 2, 4}) {
    SCOPED_TRACE("ranks " + std::to_string(p));
    for (const mg::MatrixFormat format :
         {mg::MatrixFormat::kCsr, mg::MatrixFormat::kBsr3,
          mg::MatrixFormat::kMf}) {
      SCOPED_TRACE("format " + std::to_string(static_cast<int>(format)));
      SolveService service(small_config(p, format));
      service.register_problem("box", make_box_problem(4));
      const idx n = service.acquire("box")->unknowns;
      check_blocked_matches_single(service, make_rhs_block(n, 3));
    }
  }
}

TEST(ServiceSolve, BlockedMatchesSingleUnderSyncHalo) {
  const EnvGuard guard;
  dla::set_halo_mode(dla::HaloMode::kSync);
  SolveService service(small_config(2, mg::MatrixFormat::kCsr));
  service.register_problem("box", make_box_problem(4));
  const idx n = service.acquire("box")->unknowns;
  check_blocked_matches_single(service, make_rhs_block(n, 3));
}

TEST(ServiceRefine, FingerprintSeparatesRefineRounds) {
  SolveService service(small_config(2, mg::MatrixFormat::kCsr));
  service.register_problem("box", make_box_problem(4));
  const std::string base = service.fingerprint("box");
  // Refinement shapes the grids, so it must be part of the cache key.
  EXPECT_NE(base.find("|ref="), std::string::npos);
  EXPECT_NE(base, service.fingerprint("box", 2));
  EXPECT_NE(service.fingerprint("box", 1), service.fingerprint("box", 2));
  // A request's default (-1) resolves to the config's refine_rounds.
  {
    ServiceConfig sc = small_config(2, mg::MatrixFormat::kCsr);
    sc.refine_rounds = 2;
    SolveService with_default(sc);
    with_default.register_problem("box", make_box_problem(4));
    EXPECT_EQ(with_default.fingerprint("box"),
              with_default.fingerprint("box", 2));
    EXPECT_EQ(with_default.fingerprint("box", 2),
              service.fingerprint("box", 2));
  }
  // The marking fraction shapes which cells refine: distinct key too.
  {
    ServiceConfig sc = small_config(2, mg::MatrixFormat::kCsr);
    sc.refine_fraction = 0.25;
    SolveService other(sc);
    other.register_problem("box", make_box_problem(4));
    EXPECT_NE(service.fingerprint("box", 2), other.fingerprint("box", 2));
  }
}

TEST(ServiceRefine, DistinctRoundsAreDistinctEntries) {
  SolveService service(small_config(2, mg::MatrixFormat::kCsr));
  service.register_problem("box", make_box_problem(4));

  const EntryHandle plain = service.acquire("box");
  const EntryHandle refined = service.acquire("box", 2);
  EXPECT_EQ(service.cache_misses(), 2);
  EXPECT_NE(plain.get(), refined.get());
  EXPECT_EQ(service.cache_size(), 2u);
  // Two bisection rounds grow the unknown count past the unrefined box.
  EXPECT_GT(refined->unknowns, plain->unknowns);

  // A request carrying refine_rounds hits the refined entry and solves on
  // the refined free-dof space.
  SolveRequest req;
  req.mesh_id = "box";
  req.refine_rounds = 2;
  const SolveResponse resp = service.solve(req);
  EXPECT_TRUE(resp.cache_hit);
  ASSERT_EQ(resp.results.size(), 1u);
  EXPECT_TRUE(resp.results[0].converged);
  EXPECT_EQ(resp.solutions.rows(), refined->unknowns);
}

TEST(ServiceRefine, RefinedScalarSolveConverges) {
  ServiceConfig sc = small_config(2, mg::MatrixFormat::kCsr);
  sc.refine_rounds = 1;
  SolveService service(sc);
  service.register_problem("het", make_poisson_het_problem(4, 1e3));
  SolveRequest req;
  req.mesh_id = "het";
  const SolveResponse resp = service.solve(req);
  ASSERT_EQ(resp.results.size(), 1u);
  EXPECT_TRUE(resp.results[0].converged);
}

TEST(ServiceRefine, EmitsImbalanceGauges) {
  SolveService service(small_config(4, mg::MatrixFormat::kCsr));
  service.register_problem("box", make_box_problem(4));

  obs::Tracer& tracer = obs::Tracer::instance();
  const bool was_tracing = obs::tracing();
  tracer.set_enabled(true);
  const std::int64_t mark = obs::Tracer::now_ns();
  service.acquire("box", 2);
  tracer.set_enabled(was_tracing);
  const obs::Report rep = obs::build_report(mark);

  EXPECT_NE(rep.phase("refine"), nullptr);
  const double inherited = rep.gauge("refine.imbalance.inherited");
  const double rebalanced = rep.gauge("refine.imbalance.rebalanced");
  ASSERT_FALSE(std::isnan(inherited));
  ASSERT_FALSE(std::isnan(rebalanced));
  EXPECT_GE(inherited, 1.0);
  // The acceptance bar: the fresh RCB cut stays within 1.2 of perfect.
  EXPECT_GE(rebalanced, 1.0);
  EXPECT_LE(rebalanced, 1.2);
  EXPECT_LE(rebalanced, inherited + 1e-12);
}

TEST(ServiceRefine, ScalarRejectsNodeBlockFormats) {
  // bsr3 and mf are built around the 3-dof node block; the scalar classes
  // must be rejected at entry with a message naming the combination, not
  // silently downgraded to CSR.
  for (const mg::MatrixFormat format :
       {mg::MatrixFormat::kBsr3, mg::MatrixFormat::kMf}) {
    SCOPED_TRACE("format " + std::to_string(static_cast<int>(format)));
    SolveService service(small_config(2, format));
    service.register_problem("het", make_poisson_het_problem(4, 1e3));
    service.register_problem("adv", make_advdiff_problem(4, 10.0));
    EXPECT_THROW(service.acquire("het"), prom::Error);
    EXPECT_THROW(service.acquire("adv"), prom::Error);
    try {
      service.acquire("het");
      FAIL() << "scalar + non-CSR format must throw";
    } catch (const prom::Error& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("scalar equation classes"), std::string::npos)
          << what;
      EXPECT_NE(what.find(format == mg::MatrixFormat::kBsr3 ? "bsr3" : "mf"),
                std::string::npos)
          << what;
      EXPECT_NE(what.find("elasticity-only"), std::string::npos) << what;
    }
    // Elasticity keeps working in the same format.
    service.register_problem("box", make_box_problem(4));
    EXPECT_TRUE(service.solve({.mesh_id = "box"}).results[0].converged);
  }
  // The supported scalar configuration still solves.
  SolveService csr(small_config(2, mg::MatrixFormat::kCsr));
  csr.register_problem("het", make_poisson_het_problem(4, 1e3));
  EXPECT_TRUE(csr.solve({.mesh_id = "het"}).results[0].converged);
}

TEST(ServiceSolve, ChunkingCoversWideBlocks) {
  // 5 right-hand sides with PROM_RHS_BLOCK defaulting to 8 runs one
  // chunk; the chunked path is the same code either way, so just check
  // every column converges and matches its standalone solve.
  const EnvGuard guard;
  SolveService service(small_config(2, mg::MatrixFormat::kCsr));
  service.register_problem("box", make_box_problem(4));
  const idx n = service.acquire("box")->unknowns;
  check_blocked_matches_single(service, make_rhs_block(n, 5));
}

}  // namespace
}  // namespace prom::app
