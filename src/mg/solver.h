// The paper's solver: conjugate gradient preconditioned with one multigrid
// cycle (§7.2: "preconditioned conjugate gradient (PCG), preconditioned
// with one 'full' multigrid cycle"). CycleKind lives in mg/cycle_any.h
// with the backend-generic cycle templates.
#pragma once

#include <span>

#include "la/krylov.h"
#include "la/operator.h"
#include "mg/cycle.h"
#include "mg/hierarchy.h"

namespace prom::mg {

/// Adapts one multigrid cycle to the preconditioner interface.
class MgPreconditioner final : public la::LinearOperator {
 public:
  MgPreconditioner(const Hierarchy& h, CycleKind kind,
                   MatrixFormat format = MatrixFormat::kCsr)
      : h_(&h), kind_(kind), format_(format) {}

  idx rows() const override { return h_->level(0).a.nrows; }
  idx cols() const override { return rows(); }
  void apply(std::span<const real> x, std::span<real> y) const override;
  /// One blocked cycle serves all k columns (column j bitwise equals
  /// `apply` on that column).
  void apply_mv(const la::MultiVec& x, la::MultiVec& y) const override;

 private:
  const Hierarchy* h_;
  CycleKind kind_;
  MatrixFormat format_;
};

struct MgSolveOptions {
  real rtol = 1e-6;
  int max_iters = 200;
  CycleKind cycle = CycleKind::kFmg;
  bool track_history = false;
  /// kBsr3 applies every level operator through its node-block view
  /// (requires Hierarchy::enable_bsr() first).
  MatrixFormat format = MatrixFormat::kCsr;
  /// Outer Krylov driver (mg_krylov_solve / dist_mg_krylov_solve): PCG
  /// for SPD operators, GMRES/BiCGStab for non-symmetric ones. The MG
  /// preconditioner is a fixed linear operator (the cycle never adapts to
  /// its input), so right-preconditioned GMRES is valid as-is.
  la::KrylovKind krylov = la::KrylovKind::kPcg;
  int restart = 50;  ///< GMRES subspace dimension per cycle
};

/// The single MgSolveOptions -> KrylovOptions mapping, shared by the
/// serial and distributed MG-PCG drivers so the stopping criterion cannot
/// drift between backends (both feed la::pcg_any, which applies
/// la::krylov_converged).
inline la::KrylovOptions to_krylov_options(const MgSolveOptions& opts) {
  la::KrylovOptions kopts;
  kopts.rtol = opts.rtol;
  kopts.max_iters = opts.max_iters;
  kopts.track_history = opts.track_history;
  return kopts;
}

/// The MgSolveOptions -> GmresOptions mapping, shared by the serial and
/// distributed MG-GMRES drivers (same tolerance discipline as
/// to_krylov_options).
inline la::GmresOptions to_gmres_options(const MgSolveOptions& opts) {
  la::GmresOptions gopts;
  gopts.rtol = opts.rtol;
  gopts.max_iters = opts.max_iters;
  gopts.restart = opts.restart;
  gopts.track_history = opts.track_history;
  return gopts;
}

/// Solves A_0 x = b with MG-preconditioned CG; x holds the initial guess.
la::KrylovResult mg_pcg_solve(const Hierarchy& h, std::span<const real> b,
                              std::span<real> x,
                              const MgSolveOptions& opts = {});

/// Solves A_0 x = b with the Krylov driver selected by `opts.krylov` —
/// MG-preconditioned CG, GMRES(m), or BiCGStab. The non-symmetric drivers
/// right-precondition with the same cycle.
la::KrylovResult mg_krylov_solve(const Hierarchy& h, std::span<const real> b,
                                 std::span<real> x,
                                 const MgSolveOptions& opts = {});

/// Solves A_0 X = B for k right-hand sides with one blocked MG-PCG run:
/// every operator application and cycle serves all columns at once, and
/// column j of the result is bitwise identical to `mg_pcg_solve` on that
/// column alone. `ws` (optional) reuses PCG work vectors across solves.
std::vector<la::KrylovResult> mg_pcg_solve_mv(const Hierarchy& h,
                                              const la::MultiVec& b,
                                              la::MultiVec& x,
                                              const MgSolveOptions& opts = {},
                                              la::KrylovWorkspace* ws =
                                                  nullptr);

}  // namespace prom::mg
