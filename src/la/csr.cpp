#include "la/csr.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "common/flops.h"
#include "common/parallel.h"

namespace prom::la {
namespace {

/// Rows per parallel chunk for row-partitioned kernels. Fixed constants:
/// the chunk decomposition is part of the bit-determinism contract (see
/// common/parallel.h), so it may depend on the matrix but never on the
/// thread count.
constexpr idx kRowGrain = 256;
constexpr idx kSpgemmGrain = 1024;
constexpr idx kMergeGrain = 8192;

/// Transpose-SpMV scatter chunks. Each chunk owns a private accumulator of
/// `ncols` reals, so the count is capped to bound memory (8 x ncols reals).
idx transpose_grain(idx nrows) {
  return std::max<idx>(2048, (nrows + 7) / 8);
}

}  // namespace

void Csr::spmv(std::span<const real> x, std::span<real> y) const {
  PROM_CHECK(static_cast<idx>(x.size()) == ncols &&
             static_cast<idx>(y.size()) == nrows);
  common::parallel_for(0, nrows, kRowGrain, [&](idx rb, idx re) {
    for (idx i = rb; i < re; ++i) {
      real sum = 0;
      for (nnz_t k = rowptr[i]; k < rowptr[i + 1]; ++k) {
        sum += vals[k] * x[colidx[k]];
      }
      y[i] = sum;
    }
  });
  count_flops(2 * nnz());
}

void Csr::spmv_add(std::span<const real> x, std::span<real> y) const {
  PROM_CHECK(static_cast<idx>(x.size()) == ncols &&
             static_cast<idx>(y.size()) == nrows);
  common::parallel_for(0, nrows, kRowGrain, [&](idx rb, idx re) {
    for (idx i = rb; i < re; ++i) {
      real sum = 0;
      for (nnz_t k = rowptr[i]; k < rowptr[i + 1]; ++k) {
        sum += vals[k] * x[colidx[k]];
      }
      y[i] += sum;
    }
  });
  count_flops(2 * nnz());
}

void Csr::spmv_transpose(std::span<const real> x, std::span<real> y) const {
  PROM_CHECK(static_cast<idx>(x.size()) == nrows &&
             static_cast<idx>(y.size()) == ncols);
  const idx grain = transpose_grain(nrows);
  const idx nchunks = common::chunk_count(0, nrows, grain);
  if (nchunks <= 1) {
    std::fill(y.begin(), y.end(), real{0});
    for (idx i = 0; i < nrows; ++i) {
      const real xi = x[i];
      for (nnz_t k = rowptr[i]; k < rowptr[i + 1]; ++k) {
        y[colidx[k]] += vals[k] * xi;
      }
    }
    count_flops(2 * nnz());
    return;
  }
  // Scatter into per-chunk accumulators (disjoint by construction), then
  // merge them column-parallel in fixed chunk order — the merge order is a
  // function of the decomposition, so any thread count produces the same
  // bits.
  std::vector<real> partial(static_cast<std::size_t>(nchunks) * ncols,
                            real{0});
  common::parallel_for(0, nrows, grain, [&](idx rb, idx re) {
    real* acc = partial.data() + static_cast<std::size_t>(rb / grain) * ncols;
    for (idx i = rb; i < re; ++i) {
      const real xi = x[i];
      for (nnz_t k = rowptr[i]; k < rowptr[i + 1]; ++k) {
        acc[colidx[k]] += vals[k] * xi;
      }
    }
  });
  common::parallel_for(0, ncols, kMergeGrain, [&](idx jb, idx je) {
    for (idx j = jb; j < je; ++j) {
      real sum = 0;
      for (idx c = 0; c < nchunks; ++c) {
        sum += partial[static_cast<std::size_t>(c) * ncols + j];
      }
      y[j] = sum;
    }
  });
  count_flops(2 * nnz());
}

void Csr::residual(std::span<const real> b, std::span<const real> x,
                   std::span<real> r) const {
  PROM_CHECK(static_cast<idx>(x.size()) == ncols &&
             static_cast<idx>(b.size()) == nrows &&
             static_cast<idx>(r.size()) == nrows);
  common::parallel_for(0, nrows, kRowGrain, [&](idx rb, idx re) {
    for (idx i = rb; i < re; ++i) {
      real sum = 0;
      for (nnz_t k = rowptr[i]; k < rowptr[i + 1]; ++k) {
        sum += vals[k] * x[colidx[k]];
      }
      r[i] = b[i] - sum;
    }
  });
  count_flops(2 * nnz() + nrows);
}

void Csr::spmv_rows(std::span<const real> x, std::span<real> y,
                    std::span<const idx> rows) const {
  PROM_CHECK(static_cast<idx>(x.size()) == ncols &&
             static_cast<idx>(y.size()) == nrows);
  const idx n = static_cast<idx>(rows.size());
  common::parallel_for(0, n, kRowGrain, [&](idx tb, idx te) {
    nnz_t sub = 0;
    for (idx t = tb; t < te; ++t) {
      const idx i = rows[t];
      real sum = 0;
      for (nnz_t k = rowptr[i]; k < rowptr[i + 1]; ++k) {
        sum += vals[k] * x[colidx[k]];
      }
      y[i] = sum;
      sub += rowptr[i + 1] - rowptr[i];
    }
    count_flops(2 * sub);
  });
}

void Csr::residual_rows(std::span<const real> b, std::span<const real> x,
                        std::span<real> r, std::span<const idx> rows) const {
  PROM_CHECK(static_cast<idx>(x.size()) == ncols &&
             static_cast<idx>(b.size()) == nrows &&
             static_cast<idx>(r.size()) == nrows);
  const idx n = static_cast<idx>(rows.size());
  common::parallel_for(0, n, kRowGrain, [&](idx tb, idx te) {
    nnz_t sub = 0;
    for (idx t = tb; t < te; ++t) {
      const idx i = rows[t];
      real sum = 0;
      for (nnz_t k = rowptr[i]; k < rowptr[i + 1]; ++k) {
        sum += vals[k] * x[colidx[k]];
      }
      r[i] = b[i] - sum;
      sub += rowptr[i + 1] - rowptr[i];
    }
    count_flops(2 * sub + (te - tb));
  });
}

namespace {

/// Shared core of the blocked kernels: per row, one pass over the nonzeros
/// feeds one accumulator per column, each updated in the same sorted-column
/// order as spmv — so every column's bits match the single-vector kernel.
/// `emit(i, j, sum)` stores the row result for column j.
template <class Emit>
void spmm_rows_core(const Csr& a, const MultiVec& x, std::span<const idx> rows,
                    const Emit& emit) {
  const int k = x.cols();
  const real* xp[kMaxRhsBlock];
  for (int j = 0; j < k; ++j) xp[j] = x.col_data(j);
  // An empty `rows` means "all rows in order" (the dense spmm/residual_mv
  // case); a non-empty list reproduces spmv_rows' subset semantics.
  const idx n = rows.empty() ? a.nrows : static_cast<idx>(rows.size());
  common::parallel_for(0, n, kRowGrain, [&](idx tb, idx te) {
    nnz_t sub = 0;
    for (idx t = tb; t < te; ++t) {
      const idx i = rows.empty() ? t : rows[t];
      real acc[kMaxRhsBlock];
      for (int j = 0; j < k; ++j) acc[j] = 0;
      for (nnz_t kk = a.rowptr[i]; kk < a.rowptr[i + 1]; ++kk) {
        const real v = a.vals[kk];
        const idx c = a.colidx[kk];
        for (int j = 0; j < k; ++j) acc[j] += v * xp[j][c];
      }
      for (int j = 0; j < k; ++j) emit(i, j, acc[j]);
      sub += a.rowptr[i + 1] - a.rowptr[i];
    }
    count_flops(2 * sub * k);
  });
}

void check_mv_shapes(const Csr& a, const MultiVec& x, const MultiVec& y) {
  PROM_CHECK(x.rows() == a.ncols && y.rows() == a.nrows &&
             x.cols() == y.cols() && x.cols() >= 1);
}

}  // namespace

void Csr::spmm(const MultiVec& x, MultiVec& y) const {
  check_mv_shapes(*this, x, y);
  real* yp[kMaxRhsBlock];
  for (int j = 0; j < x.cols(); ++j) yp[j] = y.col_data(j);
  spmm_rows_core(*this, x, {},
                 [&](idx i, int j, real sum) { yp[j][i] = sum; });
}

void Csr::residual_mv(const MultiVec& b, const MultiVec& x,
                      MultiVec& r) const {
  check_mv_shapes(*this, x, r);
  PROM_CHECK(b.rows() == nrows && b.cols() == x.cols());
  const real* bp[kMaxRhsBlock];
  real* rp[kMaxRhsBlock];
  for (int j = 0; j < x.cols(); ++j) {
    bp[j] = b.col_data(j);
    rp[j] = r.col_data(j);
  }
  spmm_rows_core(*this, x, {},
                 [&](idx i, int j, real sum) { rp[j][i] = bp[j][i] - sum; });
  count_flops(static_cast<std::int64_t>(nrows) * x.cols());
}

void Csr::spmm_rows(const MultiVec& x, MultiVec& y,
                    std::span<const idx> rows) const {
  check_mv_shapes(*this, x, y);
  if (rows.empty()) return;
  real* yp[kMaxRhsBlock];
  for (int j = 0; j < x.cols(); ++j) yp[j] = y.col_data(j);
  spmm_rows_core(*this, x, rows,
                 [&](idx i, int j, real sum) { yp[j][i] = sum; });
}

void Csr::residual_mv_rows(const MultiVec& b, const MultiVec& x, MultiVec& r,
                           std::span<const idx> rows) const {
  check_mv_shapes(*this, x, r);
  PROM_CHECK(b.rows() == nrows && b.cols() == x.cols());
  if (rows.empty()) return;
  const real* bp[kMaxRhsBlock];
  real* rp[kMaxRhsBlock];
  for (int j = 0; j < x.cols(); ++j) {
    bp[j] = b.col_data(j);
    rp[j] = r.col_data(j);
  }
  spmm_rows_core(*this, x, rows,
                 [&](idx i, int j, real sum) { rp[j][i] = bp[j][i] - sum; });
  count_flops(static_cast<std::int64_t>(rows.size()) * x.cols());
}

std::vector<real> Csr::apply(std::span<const real> x) const {
  std::vector<real> y(static_cast<std::size_t>(nrows));
  spmv(x, y);
  return y;
}

real Csr::at(idx i, idx j) const {
  PROM_CHECK(i >= 0 && i < nrows && j >= 0 && j < ncols);
  const auto begin = colidx.begin() + rowptr[i];
  const auto end = colidx.begin() + rowptr[i + 1];
  const auto it = std::lower_bound(begin, end, j);
  if (it == end || *it != j) return 0;
  return vals[it - colidx.begin()];
}

Csr Csr::transposed() const {
  Csr t;
  t.nrows = ncols;
  t.ncols = nrows;
  t.rowptr.assign(static_cast<std::size_t>(ncols) + 1, 0);
  for (idx j : colidx) t.rowptr[j + 1]++;
  for (idx j = 0; j < ncols; ++j) t.rowptr[j + 1] += t.rowptr[j];
  t.colidx.resize(colidx.size());
  t.vals.resize(vals.size());
  std::vector<nnz_t> next(t.rowptr.begin(), t.rowptr.end() - 1);
  for (idx i = 0; i < nrows; ++i) {
    for (nnz_t k = rowptr[i]; k < rowptr[i + 1]; ++k) {
      const nnz_t pos = next[colidx[k]]++;
      t.colidx[pos] = i;
      t.vals[pos] = vals[k];
    }
  }
  return t;  // columns are sorted because rows were traversed in order
}

std::vector<real> Csr::diagonal() const {
  std::vector<real> d(static_cast<std::size_t>(nrows), real{0});
  for (idx i = 0; i < nrows && i < ncols; ++i) d[i] = at(i, i);
  return d;
}

real Csr::symmetry_error() const {
  if (nrows != ncols) return std::numeric_limits<real>::infinity();
  real err = 0;
  for (idx i = 0; i < nrows; ++i) {
    for (nnz_t k = rowptr[i]; k < rowptr[i + 1]; ++k) {
      err = std::max(err, std::fabs(vals[k] - at(colidx[k], i)));
    }
  }
  return err;
}

Csr Csr::from_triplets(idx nrows, idx ncols,
                       std::span<const Triplet> triplets) {
  std::vector<Triplet> t(triplets.begin(), triplets.end());
  std::sort(t.begin(), t.end(), [](const Triplet& a, const Triplet& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });
  Csr m;
  m.nrows = nrows;
  m.ncols = ncols;
  m.rowptr.assign(static_cast<std::size_t>(nrows) + 1, 0);
  m.colidx.reserve(t.size());
  m.vals.reserve(t.size());
  for (std::size_t i = 0; i < t.size();) {
    PROM_CHECK(t[i].row >= 0 && t[i].row < nrows && t[i].col >= 0 &&
               t[i].col < ncols);
    real sum = 0;
    const idx row = t[i].row, col = t[i].col;
    while (i < t.size() && t[i].row == row && t[i].col == col) {
      sum += t[i].value;
      ++i;
    }
    m.colidx.push_back(col);
    m.vals.push_back(sum);
    m.rowptr[row + 1] = static_cast<nnz_t>(m.colidx.size());
  }
  for (idx r = 0; r < nrows; ++r) {
    m.rowptr[r + 1] = std::max(m.rowptr[r + 1], m.rowptr[r]);
  }
  return m;
}

Csr Csr::identity(idx n) {
  Csr m;
  m.nrows = m.ncols = n;
  m.rowptr.resize(static_cast<std::size_t>(n) + 1);
  m.colidx.resize(static_cast<std::size_t>(n));
  m.vals.assign(static_cast<std::size_t>(n), real{1});
  for (idx i = 0; i <= n; ++i) m.rowptr[i] = i;
  for (idx i = 0; i < n; ++i) m.colidx[i] = i;
  return m;
}

std::vector<real> Csr::to_dense_rowmajor() const {
  std::vector<real> d(static_cast<std::size_t>(nrows) * ncols, real{0});
  for (idx i = 0; i < nrows; ++i) {
    for (nnz_t k = rowptr[i]; k < rowptr[i + 1]; ++k) {
      d[static_cast<std::size_t>(i) * ncols + colidx[k]] = vals[k];
    }
  }
  return d;
}

Csr spgemm(const Csr& a, const Csr& b) {
  PROM_CHECK(a.ncols == b.nrows);
  Csr c;
  c.nrows = a.nrows;
  c.ncols = b.ncols;
  c.rowptr.assign(static_cast<std::size_t>(a.nrows) + 1, 0);

  // Row-parallel Gustavson: each fixed chunk of rows runs the classic
  // serial algorithm into private buffers (every row's accumulation order
  // is identical to the serial code, so results are bit-identical for any
  // thread count), then the chunk outputs are concatenated in chunk order.
  struct ChunkOut {
    std::vector<idx> cols;
    std::vector<real> vals;
    std::vector<nnz_t> row_nnz;
    std::int64_t flops = 0;
  };
  const idx nchunks = common::chunk_count(0, a.nrows, kSpgemmGrain);
  std::vector<ChunkOut> outs(static_cast<std::size_t>(nchunks));
  common::parallel_for(0, a.nrows, kSpgemmGrain, [&](idx rb, idx re) {
    ChunkOut& out = outs[rb / kSpgemmGrain];
    out.row_nnz.reserve(static_cast<std::size_t>(re - rb));
    // Gustavson: a dense accumulator over the columns of C per row of A.
    // Rows stamp the marker with their (globally unique) index, so one
    // allocation serves the whole chunk.
    std::vector<real> acc(static_cast<std::size_t>(b.ncols), real{0});
    std::vector<idx> marker(static_cast<std::size_t>(b.ncols), kInvalidIdx);
    std::vector<idx> cols_in_row;
    for (idx i = rb; i < re; ++i) {
      cols_in_row.clear();
      for (nnz_t ka = a.rowptr[i]; ka < a.rowptr[i + 1]; ++ka) {
        const idx j = a.colidx[ka];
        const real av = a.vals[ka];
        for (nnz_t kb = b.rowptr[j]; kb < b.rowptr[j + 1]; ++kb) {
          const idx col = b.colidx[kb];
          if (marker[col] != i) {
            marker[col] = i;
            acc[col] = 0;
            cols_in_row.push_back(col);
          }
          acc[col] += av * b.vals[kb];
          out.flops += 2;
        }
      }
      std::sort(cols_in_row.begin(), cols_in_row.end());
      for (idx col : cols_in_row) {
        out.cols.push_back(col);
        out.vals.push_back(acc[col]);
      }
      out.row_nnz.push_back(static_cast<nnz_t>(cols_in_row.size()));
    }
  });

  std::int64_t flops = 0;
  std::vector<nnz_t> chunk_offset(static_cast<std::size_t>(nchunks) + 1, 0);
  for (idx ch = 0; ch < nchunks; ++ch) {
    const ChunkOut& out = outs[ch];
    flops += out.flops;
    chunk_offset[ch + 1] = chunk_offset[ch] +
                           static_cast<nnz_t>(out.cols.size());
    for (std::size_t r = 0; r < out.row_nnz.size(); ++r) {
      const idx i = ch * kSpgemmGrain + static_cast<idx>(r);
      c.rowptr[i + 1] = c.rowptr[i] + out.row_nnz[r];
    }
  }
  c.colidx.resize(static_cast<std::size_t>(chunk_offset[nchunks]));
  c.vals.resize(static_cast<std::size_t>(chunk_offset[nchunks]));
  common::parallel_for(0, nchunks, 1, [&](idx cb, idx ce) {
    for (idx ch = cb; ch < ce; ++ch) {
      std::copy(outs[ch].cols.begin(), outs[ch].cols.end(),
                c.colidx.begin() + chunk_offset[ch]);
      std::copy(outs[ch].vals.begin(), outs[ch].vals.end(),
                c.vals.begin() + chunk_offset[ch]);
    }
  });
  count_flops(flops);
  return c;
}

Csr galerkin_product(const Csr& r, const Csr& a) {
  PROM_CHECK(r.ncols == a.nrows && a.nrows == a.ncols);
  const Csr rt = r.transposed();
  const Csr art = spgemm(a, rt);
  return spgemm(r, art);
}

Csr drop_small(const Csr& a, real tol) {
  Csr m;
  m.nrows = a.nrows;
  m.ncols = a.ncols;
  m.rowptr.assign(static_cast<std::size_t>(a.nrows) + 1, 0);
  for (idx i = 0; i < a.nrows; ++i) {
    for (nnz_t k = a.rowptr[i]; k < a.rowptr[i + 1]; ++k) {
      if (std::fabs(a.vals[k]) > tol || a.colidx[k] == i) {
        m.colidx.push_back(a.colidx[k]);
        m.vals.push_back(a.vals[k]);
      }
    }
    m.rowptr[i + 1] = static_cast<nnz_t>(m.colidx.size());
  }
  return m;
}

}  // namespace prom::la
