// Distributed CSR matrices: each rank stores the rows it owns; columns are
// split into the locally-owned block and "ghost" columns whose values are
// fetched from their owners by a precomputed neighbor-exchange plan before
// each SpMV — the standard PETSc-style MPIAIJ pattern the paper's solve
// phase runs on.
#pragma once

#include <span>
#include <vector>

#include "common/config.h"
#include "dla/dist_vec.h"
#include "la/csr.h"
#include "parx/runtime.h"

namespace prom::dla {

class DistCsr {
 public:
  DistCsr() = default;

  /// Builds this rank's slice of the global matrix `a` (replicated input;
  /// only rows [row_dist.begin(rank), end(rank)) are stored). `col_dist`
  /// describes the distribution of the input vector. Collective.
  DistCsr(parx::Comm& comm, const la::Csr& a, RowDist row_dist,
          RowDist col_dist);

  const RowDist& row_dist() const { return rows_; }
  const RowDist& col_dist() const { return cols_; }
  idx local_rows() const { return local_.nrows; }
  idx num_ghosts() const { return static_cast<idx>(ghost_cols_.size()); }

  /// y_local = A x (x given as the local block of the distributed input);
  /// performs the ghost exchange. Collective.
  void spmv(parx::Comm& comm, std::span<const real> x_local,
            std::span<real> y_local) const;

  /// y_local = A^T x distributed: each rank computes its rows' scatter
  /// contributions and ships them to the owners of the output (used for
  /// prolongation when only R is stored). Collective.
  void spmv_transpose(parx::Comm& comm, std::span<const real> x_local,
                      std::span<real> y_local) const;

  /// The local rows with *local* column indexing: columns [0, n_local) are
  /// owned, [n_local, n_local + n_ghost) are ghosts.
  const la::Csr& local_matrix() const { return local_; }

  /// Diagonal block (owned rows x owned cols) as a standalone matrix —
  /// what the processor-local block-Jacobi smoother factors.
  la::Csr local_diagonal_block() const;

 private:
  void exchange_ghosts(parx::Comm& comm, std::span<const real> x_local,
                       std::span<real> ghost_values) const;

  int rank_ = 0;
  RowDist rows_;
  RowDist cols_;
  la::Csr local_;                 // local rows, remapped columns
  std::vector<idx> ghost_cols_;   // global ids of ghost columns (sorted)
  // Exchange plan: for each peer rank, the local indices of my owned x
  // entries to send (send_plan_) and the ghost slots to fill (recv ordering
  // follows each peer's send order = their request order).
  std::vector<int> peers_send_;               // ranks I send values to
  std::vector<std::vector<idx>> send_lists_;  // local x indices per peer
  std::vector<int> peers_recv_;               // ranks I receive from
  std::vector<std::vector<idx>> recv_slots_;  // ghost slots per peer
};

}  // namespace prom::dla
