file(REMOVE_RECURSE
  "CMakeFiles/prom_mesh.dir/mesh/generate.cpp.o"
  "CMakeFiles/prom_mesh.dir/mesh/generate.cpp.o.d"
  "CMakeFiles/prom_mesh.dir/mesh/io.cpp.o"
  "CMakeFiles/prom_mesh.dir/mesh/io.cpp.o.d"
  "CMakeFiles/prom_mesh.dir/mesh/mesh.cpp.o"
  "CMakeFiles/prom_mesh.dir/mesh/mesh.cpp.o.d"
  "CMakeFiles/prom_mesh.dir/mesh/vtk.cpp.o"
  "CMakeFiles/prom_mesh.dir/mesh/vtk.cpp.o.d"
  "libprom_mesh.a"
  "libprom_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prom_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
