#include "common/timer.h"

// Header-only today; this translation unit anchors the library target and
// leaves room for future non-inline additions.
