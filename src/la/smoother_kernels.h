// The single smoother-driver implementations, templated over an execution
// backend (la/backend.h). The serial Smoother classes (la/smoothers.h) and
// the distributed per-level smoothers (dla/dist_mg.cpp) both delegate
// here, so a smoothing step is the same arithmetic — including the fixed
// parallel_for grains of the intra-rank determinism contract — on every
// backend; only the operator application communicates.
#pragma once

#include <cmath>
#include <span>
#include <vector>

#include "common/config.h"
#include "common/error.h"
#include "common/flops.h"
#include "common/parallel.h"
#include "la/backend.h"
#include "la/dense.h"
#include "la/vec.h"
#include "obs/trace.h"

namespace prom::la {

/// Fixed chunk sizes (see common/parallel.h determinism contract).
constexpr idx kSmootherPointGrain = 8192;  // elementwise updates
constexpr idx kSmootherBlockGrain = 8;     // block-Jacobi blocks

/// One damped point-Jacobi step: x += omega * D^{-1} (b - A x), on the
/// local block. `inv_diag` holds the inverted diagonal of the local rows.
template <class B, class Op>
  requires BackendFor<B, Op>
void jacobi_sweep(const B& be, const Op& a, std::span<const real> inv_diag,
                  real omega, std::span<const real> b, std::span<real> x) {
  const obs::Span span("smoother.jacobi");
  const idx n = be.local_n(a);
  PROM_CHECK(static_cast<idx>(b.size()) == n &&
             static_cast<idx>(x.size()) == n);
  std::vector<real> r(n);
  be.residual(a, b, x, r);  // r = b - A x
  common::parallel_for(0, n, kSmootherPointGrain, [&](idx ib, idx ie) {
    for (idx i = ib; i < ie; ++i) {
      x[i] += omega * inv_diag[i] * r[i];
    }
  });
  count_flops(4LL * n);
}

/// One damped block-Jacobi step: x += omega * blkdiag(A)^{-1} (b - A x).
/// `blocks[k]` lists the local row indices of block k (a partition of the
/// local rows); `factors[k]` is its dense LDL^T.
template <class B, class Op>
  requires BackendFor<B, Op>
void block_jacobi_sweep(const B& be, const Op& a,
                        std::span<const std::vector<idx>> blocks,
                        std::span<const DenseLdlt> factors, real omega,
                        std::span<const real> b, std::span<real> x) {
  const obs::Span span("smoother.block_jacobi");
  const idx n = be.local_n(a);
  PROM_CHECK(static_cast<idx>(b.size()) == n &&
             static_cast<idx>(x.size()) == n);
  std::vector<real> r(n);
  be.residual(a, b, x, r);  // r = b - A x
  // Blocks partition the rows, so block solves write disjoint slices of x
  // and parallelize without ordering concerns.
  common::parallel_for(
      0, static_cast<idx>(blocks.size()), kSmootherBlockGrain,
      [&](idx kb, idx ke) {
        std::vector<real> rb, xb;
        for (idx k = kb; k < ke; ++k) {
          const auto& block = blocks[k];
          rb.resize(block.size());
          xb.resize(block.size());
          for (std::size_t li = 0; li < block.size(); ++li) {
            rb[li] = r[block[li]];
          }
          factors[k].solve(rb, xb);
          for (std::size_t li = 0; li < block.size(); ++li) {
            x[block[li]] += omega * xb[li];
          }
        }
      });
  count_flops(2LL * n);
}

/// One Chebyshev smoothing pass of the given degree on the Jacobi-
/// preconditioned operator D^{-1}A, targeting [lmin, lmax].
template <class B, class Op>
  requires BackendFor<B, Op>
void chebyshev_sweep(const B& be, const Op& a, std::span<const real> inv_diag,
                     int degree, real lmin, real lmax,
                     std::span<const real> b, std::span<real> x) {
  const obs::Span span("smoother.chebyshev");
  const idx n = be.local_n(a);
  PROM_CHECK(static_cast<idx>(b.size()) == n &&
             static_cast<idx>(x.size()) == n);
  const real theta = (lmax + lmin) / 2;
  const real delta = (lmax - lmin) / 2;
  const real sigma = theta / delta;
  real rho = 1 / sigma;

  std::vector<real> r(n), d(n), ad(n);
  be.residual(a, b, x, r);
  common::parallel_for(0, n, kSmootherPointGrain, [&](idx ib, idx ie) {
    for (idx i = ib; i < ie; ++i) d[i] = inv_diag[i] * r[i] / theta;
  });
  for (int k = 0; k < degree; ++k) {
    axpy(1, d, x);
    if (k + 1 == degree) break;
    be.apply(a, d, ad);
    axpy(-1, ad, r);
    const real rho_new = 1 / (2 * sigma - rho);
    common::parallel_for(0, n, kSmootherPointGrain, [&](idx ib, idx ie) {
      for (idx i = ib; i < ie; ++i) {
        const real zi = inv_diag[i] * r[i];
        d[i] = rho_new * rho * d[i] + 2 * rho_new / delta * zi;
      }
    });
    rho = rho_new;
    count_flops(6LL * n);
  }
}

/// One damped point-block Jacobi step on a node-block operator:
/// x += omega * blkdiag(A)^{-1} (b - A x), where blkdiag(A) is the BS x BS
/// diagonal node block of each block row, inverted directly (the paper's
/// nodal smoother on BAIJ matrices). `inv_blocks` holds BS*BS reals per
/// local block row (e.g. Bsr::inverted_block_diagonal()); vectors live on
/// the block space, so local_n(a) must be a multiple of BS.
template <int BS, class B, class Op>
  requires BackendFor<B, Op>
void pointblock_jacobi_sweep(const B& be, const Op& a,
                             std::span<const real> inv_blocks, real omega,
                             std::span<const real> b, std::span<real> x) {
  const obs::Span span("smoother.pointblock_jacobi");
  const idx n = be.local_n(a);
  PROM_CHECK(n % BS == 0);
  PROM_CHECK(static_cast<idx>(b.size()) == n &&
             static_cast<idx>(x.size()) == n &&
             static_cast<idx>(inv_blocks.size()) == n * BS);
  std::vector<real> r(n);
  be.residual(a, b, x, r);
  common::parallel_for(
      0, n / BS, kSmootherPointGrain / BS, [&](idx ib, idx ie) {
        for (idx i = ib; i < ie; ++i) {
          const real* inv = inv_blocks.data() +
                            static_cast<std::size_t>(i) * BS * BS;
          const real* ri = r.data() + static_cast<std::size_t>(i) * BS;
          real* xi = x.data() + static_cast<std::size_t>(i) * BS;
          for (int rr = 0; rr < BS; ++rr) {
            real sum = 0;
            for (int c = 0; c < BS; ++c) sum += inv[rr * BS + c] * ri[c];
            xi[rr] += omega * sum;
          }
        }
      });
  count_flops((2LL * BS + 2) * n);
}

/// One Chebyshev smoothing pass of the given degree preconditioned by the
/// inverted diagonal node blocks (blkdiag(A)^{-1} A), targeting
/// [lmin, lmax] — the point-block analogue of chebyshev_sweep.
template <int BS, class B, class Op>
  requires BackendFor<B, Op>
void pointblock_chebyshev_sweep(const B& be, const Op& a,
                                std::span<const real> inv_blocks, int degree,
                                real lmin, real lmax, std::span<const real> b,
                                std::span<real> x) {
  const obs::Span span("smoother.pointblock_chebyshev");
  const idx n = be.local_n(a);
  PROM_CHECK(n % BS == 0);
  PROM_CHECK(static_cast<idx>(b.size()) == n &&
             static_cast<idx>(x.size()) == n &&
             static_cast<idx>(inv_blocks.size()) == n * BS);
  const real theta = (lmax + lmin) / 2;
  const real delta = (lmax - lmin) / 2;
  const real sigma = theta / delta;
  real rho = 1 / sigma;

  std::vector<real> r(n), d(n), ad(n);
  be.residual(a, b, x, r);
  common::parallel_for(
      0, n / BS, kSmootherPointGrain / BS, [&](idx ib, idx ie) {
        for (idx i = ib; i < ie; ++i) {
          const real* inv = inv_blocks.data() +
                            static_cast<std::size_t>(i) * BS * BS;
          const real* ri = r.data() + static_cast<std::size_t>(i) * BS;
          real* di = d.data() + static_cast<std::size_t>(i) * BS;
          for (int rr = 0; rr < BS; ++rr) {
            real sum = 0;
            for (int c = 0; c < BS; ++c) sum += inv[rr * BS + c] * ri[c];
            di[rr] = sum / theta;
          }
        }
      });
  for (int k = 0; k < degree; ++k) {
    axpy(1, d, x);
    if (k + 1 == degree) break;
    be.apply(a, d, ad);
    axpy(-1, ad, r);
    const real rho_new = 1 / (2 * sigma - rho);
    common::parallel_for(
        0, n / BS, kSmootherPointGrain / BS, [&](idx ib, idx ie) {
          for (idx i = ib; i < ie; ++i) {
            const real* inv = inv_blocks.data() +
                              static_cast<std::size_t>(i) * BS * BS;
            const real* ri = r.data() + static_cast<std::size_t>(i) * BS;
            real* di = d.data() + static_cast<std::size_t>(i) * BS;
            for (int rr = 0; rr < BS; ++rr) {
              real zi = 0;
              for (int c = 0; c < BS; ++c) zi += inv[rr * BS + c] * ri[c];
              di[rr] = rho_new * rho * di[rr] + 2 * rho_new / delta * zi;
            }
          }
        });
    rho = rho_new;
    count_flops((2LL * BS + 6) * n);
  }
}

// ---------------------------------------------------------------------------
// Column-blocked sweeps. Each shares the operator pass (residual_mv /
// apply_mv) across the k columns and then runs the scalar elementwise
// update per column with the same fixed grains, so column j of a blocked
// sweep is bitwise identical to the single-vector sweep on that column.

/// Column-blocked jacobi_sweep.
template <class B, class Op>
  requires BackendFor<B, Op>
void jacobi_sweep_mv(const B& be, const Op& a, std::span<const real> inv_diag,
                     real omega, const MultiVec& b, MultiVec& x) {
  const obs::Span span("smoother.jacobi");
  const idx n = be.local_n(a);
  const int ncol = b.cols();
  PROM_CHECK(b.rows() == n && x.rows() == n && x.cols() == ncol);
  MultiVec r(n, ncol);
  be.residual_mv(a, b, x, r);
  for (int j = 0; j < ncol; ++j) {
    const real* rj = r.col_data(j);
    real* xj = x.col_data(j);
    common::parallel_for(0, n, kSmootherPointGrain, [&](idx ib, idx ie) {
      for (idx i = ib; i < ie; ++i) {
        xj[i] += omega * inv_diag[i] * rj[i];
      }
    });
  }
  count_flops(4LL * n * ncol);
}

/// Column-blocked block_jacobi_sweep.
template <class B, class Op>
  requires BackendFor<B, Op>
void block_jacobi_sweep_mv(const B& be, const Op& a,
                           std::span<const std::vector<idx>> blocks,
                           std::span<const DenseLdlt> factors, real omega,
                           const MultiVec& b, MultiVec& x) {
  const obs::Span span("smoother.block_jacobi");
  const idx n = be.local_n(a);
  const int ncol = b.cols();
  PROM_CHECK(b.rows() == n && x.rows() == n && x.cols() == ncol);
  MultiVec r(n, ncol);
  be.residual_mv(a, b, x, r);
  common::parallel_for(
      0, static_cast<idx>(blocks.size()), kSmootherBlockGrain,
      [&](idx kb, idx ke) {
        std::vector<real> rb, xb;
        for (idx k = kb; k < ke; ++k) {
          const auto& block = blocks[k];
          rb.resize(block.size());
          xb.resize(block.size());
          for (int j = 0; j < ncol; ++j) {
            const real* rj = r.col_data(j);
            real* xj = x.col_data(j);
            for (std::size_t li = 0; li < block.size(); ++li) {
              rb[li] = rj[block[li]];
            }
            factors[k].solve(rb, xb);
            for (std::size_t li = 0; li < block.size(); ++li) {
              xj[block[li]] += omega * xb[li];
            }
          }
        }
      });
  count_flops(2LL * n * ncol);
}

/// Column-blocked chebyshev_sweep. The recurrence scalars (theta, rho, …)
/// depend only on the preset eigenvalue bounds, so sharing them across
/// columns changes nothing.
template <class B, class Op>
  requires BackendFor<B, Op>
void chebyshev_sweep_mv(const B& be, const Op& a,
                        std::span<const real> inv_diag, int degree, real lmin,
                        real lmax, const MultiVec& b, MultiVec& x) {
  const obs::Span span("smoother.chebyshev");
  const idx n = be.local_n(a);
  const int ncol = b.cols();
  PROM_CHECK(b.rows() == n && x.rows() == n && x.cols() == ncol);
  const real theta = (lmax + lmin) / 2;
  const real delta = (lmax - lmin) / 2;
  const real sigma = theta / delta;
  real rho = 1 / sigma;

  MultiVec r(n, ncol), d(n, ncol), ad(n, ncol);
  be.residual_mv(a, b, x, r);
  for (int j = 0; j < ncol; ++j) {
    const real* rj = r.col_data(j);
    real* dj = d.col_data(j);
    common::parallel_for(0, n, kSmootherPointGrain, [&](idx ib, idx ie) {
      for (idx i = ib; i < ie; ++i) dj[i] = inv_diag[i] * rj[i] / theta;
    });
  }
  for (int k = 0; k < degree; ++k) {
    for (int j = 0; j < ncol; ++j) axpy(1, d.col(j), x.col(j));
    if (k + 1 == degree) break;
    be.apply_mv(a, d, ad);
    for (int j = 0; j < ncol; ++j) axpy(-1, ad.col(j), r.col(j));
    const real rho_new = 1 / (2 * sigma - rho);
    for (int j = 0; j < ncol; ++j) {
      const real* rj = r.col_data(j);
      real* dj = d.col_data(j);
      common::parallel_for(0, n, kSmootherPointGrain, [&](idx ib, idx ie) {
        for (idx i = ib; i < ie; ++i) {
          const real zi = inv_diag[i] * rj[i];
          dj[i] = rho_new * rho * dj[i] + 2 * rho_new / delta * zi;
        }
      });
    }
    rho = rho_new;
    count_flops(6LL * n * ncol);
  }
}

/// Column-blocked pointblock_jacobi_sweep.
template <int BS, class B, class Op>
  requires BackendFor<B, Op>
void pointblock_jacobi_sweep_mv(const B& be, const Op& a,
                                std::span<const real> inv_blocks, real omega,
                                const MultiVec& b, MultiVec& x) {
  const obs::Span span("smoother.pointblock_jacobi");
  const idx n = be.local_n(a);
  const int ncol = b.cols();
  PROM_CHECK(n % BS == 0);
  PROM_CHECK(b.rows() == n && x.rows() == n && x.cols() == ncol &&
             static_cast<idx>(inv_blocks.size()) == n * BS);
  MultiVec r(n, ncol);
  be.residual_mv(a, b, x, r);
  for (int j = 0; j < ncol; ++j) {
    const real* rcol = r.col_data(j);
    real* xcol = x.col_data(j);
    common::parallel_for(
        0, n / BS, kSmootherPointGrain / BS, [&](idx ib, idx ie) {
          for (idx i = ib; i < ie; ++i) {
            const real* inv =
                inv_blocks.data() + static_cast<std::size_t>(i) * BS * BS;
            const real* ri = rcol + static_cast<std::size_t>(i) * BS;
            real* xi = xcol + static_cast<std::size_t>(i) * BS;
            for (int rr = 0; rr < BS; ++rr) {
              real sum = 0;
              for (int c = 0; c < BS; ++c) sum += inv[rr * BS + c] * ri[c];
              xi[rr] += omega * sum;
            }
          }
        });
  }
  count_flops((2LL * BS + 2) * n * ncol);
}

/// Column-blocked pointblock_chebyshev_sweep.
template <int BS, class B, class Op>
  requires BackendFor<B, Op>
void pointblock_chebyshev_sweep_mv(const B& be, const Op& a,
                                   std::span<const real> inv_blocks,
                                   int degree, real lmin, real lmax,
                                   const MultiVec& b, MultiVec& x) {
  const obs::Span span("smoother.pointblock_chebyshev");
  const idx n = be.local_n(a);
  const int ncol = b.cols();
  PROM_CHECK(n % BS == 0);
  PROM_CHECK(b.rows() == n && x.rows() == n && x.cols() == ncol &&
             static_cast<idx>(inv_blocks.size()) == n * BS);
  const real theta = (lmax + lmin) / 2;
  const real delta = (lmax - lmin) / 2;
  const real sigma = theta / delta;
  real rho = 1 / sigma;

  MultiVec r(n, ncol), d(n, ncol), ad(n, ncol);
  be.residual_mv(a, b, x, r);
  for (int j = 0; j < ncol; ++j) {
    const real* rcol = r.col_data(j);
    real* dcol = d.col_data(j);
    common::parallel_for(
        0, n / BS, kSmootherPointGrain / BS, [&](idx ib, idx ie) {
          for (idx i = ib; i < ie; ++i) {
            const real* inv =
                inv_blocks.data() + static_cast<std::size_t>(i) * BS * BS;
            const real* ri = rcol + static_cast<std::size_t>(i) * BS;
            real* di = dcol + static_cast<std::size_t>(i) * BS;
            for (int rr = 0; rr < BS; ++rr) {
              real sum = 0;
              for (int c = 0; c < BS; ++c) sum += inv[rr * BS + c] * ri[c];
              di[rr] = sum / theta;
            }
          }
        });
  }
  for (int k = 0; k < degree; ++k) {
    for (int j = 0; j < ncol; ++j) axpy(1, d.col(j), x.col(j));
    if (k + 1 == degree) break;
    be.apply_mv(a, d, ad);
    for (int j = 0; j < ncol; ++j) axpy(-1, ad.col(j), r.col(j));
    const real rho_new = 1 / (2 * sigma - rho);
    for (int j = 0; j < ncol; ++j) {
      const real* rcol = r.col_data(j);
      real* dcol = d.col_data(j);
      common::parallel_for(
          0, n / BS, kSmootherPointGrain / BS, [&](idx ib, idx ie) {
            for (idx i = ib; i < ie; ++i) {
              const real* inv =
                  inv_blocks.data() + static_cast<std::size_t>(i) * BS * BS;
              const real* ri = rcol + static_cast<std::size_t>(i) * BS;
              real* di = dcol + static_cast<std::size_t>(i) * BS;
              for (int rr = 0; rr < BS; ++rr) {
                real zi = 0;
                for (int c = 0; c < BS; ++c) zi += inv[rr * BS + c] * ri[c];
                di[rr] = rho_new * rho * di[rr] + 2 * rho_new / delta * zi;
              }
            }
          });
    }
    rho = rho_new;
    count_flops((2LL * BS + 6) * n * ncol);
  }
}

/// Power iteration for the largest eigenvalue of D^{-1}A (15 steps from a
/// deterministic start). `row_offset` is the global index of the first
/// local row, so the start vector — and hence the estimate — is a function
/// of the global problem only, not of the distribution.
template <class B, class Op>
  requires BackendFor<B, Op>
real estimate_lambda_max(const B& be, const Op& a,
                         std::span<const real> inv_diag, idx row_offset) {
  const idx n = be.local_n(a);
  std::vector<real> v(static_cast<std::size_t>(n)), av(v.size());
  for (idx i = 0; i < n; ++i) v[i] = 1 + ((row_offset + i) % 7) * 0.1;
  real lambda = 1;
  for (int it = 0; it < 15; ++it) {
    be.apply(a, v, av);
    for (idx i = 0; i < n; ++i) av[i] *= inv_diag[i];
    lambda = be.norm2(av);
    if (lambda == 0) break;
    for (idx i = 0; i < n; ++i) v[i] = av[i] / lambda;
  }
  return lambda;
}

}  // namespace prom::la
