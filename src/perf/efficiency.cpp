#include "perf/efficiency.h"

namespace prom::perf {

Efficiencies compute_efficiencies(const RunMeasurement& base,
                                  const RunMeasurement& run) {
  Efficiencies e;
  if (run.iterations > 0 && base.iterations > 0) {
    e.iteration_scale = static_cast<double>(base.iterations) /
                        static_cast<double>(run.iterations);
  }
  // Flops per iteration per unknown, base over run.
  const double base_fpiu =
      base.iterations > 0 && base.unknowns > 0
          ? static_cast<double>(base.solve_flops) /
                (static_cast<double>(base.iterations) *
                 static_cast<double>(base.unknowns))
          : 0;
  const double run_fpiu =
      run.iterations > 0 && run.unknowns > 0
          ? static_cast<double>(run.solve_flops) /
                (static_cast<double>(run.iterations) *
                 static_cast<double>(run.unknowns))
          : 0;
  if (run_fpiu > 0 && base_fpiu > 0) e.flop_scale = base_fpiu / run_fpiu;

  // Communication efficiency: modeled per-rank flop rate, base over run.
  const MachineModel model;
  const double base_rate =
      base.solve_phase.modeled_flop_rate(model) / base.ranks;
  const double run_rate = run.solve_phase.modeled_flop_rate(model) / run.ranks;
  if (base_rate > 0 && run_rate > 0) e.communication = run_rate / base_rate;

  e.load_balance = run.solve_phase.load_balance();
  e.total = e.iteration_scale * e.flop_scale * e.communication;
  return e;
}

}  // namespace prom::perf
