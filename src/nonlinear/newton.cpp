#include "nonlinear/newton.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/log.h"
#include "dla/dist_mg.h"
#include "la/vec.h"
#include "partition/rcb.h"
#include "parx/runtime.h"

namespace prom::nonlinear {

NewtonDriver::NewtonDriver(fem::FeProblem& problem,
                           const mg::MgOptions& mg_opts,
                           const NewtonOptions& opts)
    : problem_(&problem), opts_(opts) {
  // Mesh setup (grids + restriction operators), paid once: built from the
  // unloaded tangent, which is SPD by construction. In distributed mode
  // the serial matrix setup is skipped entirely — every per-iteration
  // Galerkin chain is built row-distributed from the fine tangent.
  fem::LinearSystem sys = fem::assemble_linear_system(problem);
  if (opts_.dist_ranks > 0) {
    hierarchy_ = mg::Hierarchy::build_grids(problem.mesh(), problem.dofmap(),
                                            std::move(sys.stiffness), mg_opts);
    vertex_owner_ = partition::rcb_partition(problem.mesh().coords(),
                                             opts_.dist_ranks);
  } else {
    hierarchy_ = mg::Hierarchy::build(problem.mesh(), problem.dofmap(),
                                      std::move(sys.stiffness), mg_opts);
  }
  u_free_.assign(static_cast<std::size_t>(problem.dofmap().num_free()), 0);
}

la::KrylovResult NewtonDriver::solve_linear_distributed(
    std::span<const real> rhs, std::span<real> dx,
    const mg::MgSolveOptions& so) {
  la::KrylovResult result;
  parx::Runtime::run(opts_.dist_ranks, [&](parx::Comm& comm) {
    // Matrix setup, distributed: the Galerkin chain, smoothers, and
    // coarse factorization for the current tangent.
    const dla::DistHierarchy dist =
        dla::DistHierarchy::build(comm, hierarchy_, vertex_owner_);
    const auto& perm = dist.permutation(0);
    const dla::RowDist& rows = dist.level(0).a.row_dist();
    const idx b0 = rows.begin(comm.rank());
    const idx nloc = rows.local_size(comm.rank());
    std::vector<real> b_local(static_cast<std::size_t>(nloc));
    std::vector<real> x_local(static_cast<std::size_t>(nloc), 0);
    for (idx i = 0; i < nloc; ++i) b_local[i] = rhs[perm[b0 + i]];
    const la::KrylovResult lin =
        dla::dist_mg_pcg_solve(comm, dist, b_local, x_local, so);
    // Ranks own disjoint index ranges, so the scatter back to the serial
    // ordering is race-free; the result is identical on every rank.
    for (idx i = 0; i < nloc; ++i) dx[perm[b0 + i]] = x_local[i];
    if (comm.rank() == 0) result = lin;
  });
  return result;
}

NewtonStepReport NewtonDriver::solve_step(real bc_scale) {
  fem::FeProblem& prob = *problem_;
  const fem::DofMap& dofmap = prob.dofmap();
  NewtonStepReport report;

  // Residual at the trial state (previous displacement, new BC scale).
  auto residual_at = [&](std::span<const real> u_free) {
    const std::vector<real> u_full = dofmap.full_from_free(u_free, bc_scale);
    const fem::AssemblyResult res =
        prob.assemble(u_full, /*want_stiffness=*/false);
    std::vector<real> rhs(res.f_int.size());
    for (std::size_t i = 0; i < rhs.size(); ++i) rhs[i] = -res.f_int[i];
    return rhs;
  };

  std::vector<real> rhs = residual_at(u_free_);
  real first_energy = 0;
  real first_rnorm = 0;
  real prev_rnorm = 0;
  for (int m = 0; m < opts_.max_newton_iters; ++m) {
    const real rnorm = la::nrm2(rhs);
    report.residual_norms.push_back(rnorm);

    // Tangent at the current state — except on the first iteration, where
    // the trial state carries the un-equilibrated BC increment and the
    // previous converged state is used instead (see NewtonOptions).
    const real tangent_scale = (m == 0 && opts_.initial_stiffness_first_iter)
                                   ? committed_scale_
                                   : bc_scale;
    const std::vector<real> u_tan = dofmap.full_from_free(u_free_, tangent_scale);
    fem::AssemblyResult asmres = prob.assemble(u_tan, /*want_stiffness=*/true);

    // Dynamic linear tolerance (§7.2).
    real rtol = opts_.first_linear_rtol;
    if (m > 0 && prev_rnorm > 0) {
      rtol = std::min(opts_.max_linear_rtol,
                      opts_.rtol_residual_factor * rnorm / prev_rnorm);
      rtol = std::max(rtol, real{1e-12});
    }
    prev_rnorm = rnorm;

    // Matrix setup: new Galerkin chain + smoothers on the fixed grids
    // (performed inside the distributed build in dist mode).
    if (opts_.dist_ranks > 0) {
      hierarchy_.set_fine_matrix(std::move(asmres.stiffness));
    } else {
      hierarchy_.update_fine_matrix(std::move(asmres.stiffness));
    }
    ++matrix_setups_;

    // Linear solve for the increment.
    std::vector<real> dx(rhs.size(), 0);
    mg::MgSolveOptions so;
    so.rtol = rtol;
    so.max_iters = opts_.max_linear_iters;
    so.cycle = opts_.cycle;
    la::KrylovResult lin = opts_.dist_ranks > 0
                               ? solve_linear_distributed(rhs, dx, so)
                               : mg::mg_pcg_solve(hierarchy_, rhs, dx, so);
    if (lin.breakdown && opts_.gmres_fallback && opts_.dist_ranks == 0) {
      // Indefinite tangent: restarted GMRES with the same FMG
      // preconditioner still produces a usable Newton direction.
      std::fill(dx.begin(), dx.end(), real{0});
      const mg::MgPreconditioner precond(hierarchy_, opts_.cycle);
      const la::CsrOperator a(hierarchy_.level(0).a);
      la::GmresOptions gopts;
      gopts.rtol = rtol;
      gopts.max_iters = opts_.max_linear_iters;
      gopts.restart = 40;
      lin = la::gmres(a, &precond, rhs, dx, gopts);
    }
    report.linear_iters.push_back(lin.iterations);
    report.linear_rtols.push_back(rtol);
    ++report.newton_iters;

    // Backtracking: damp the increment until the trial state is evaluable
    // (no inverted elements) and the residual does not blow up.
    real damping = 1;
    std::vector<real> u_try(u_free_.size());
    std::vector<real> rhs_new;
    bool accepted = false;
    for (int bt = 0; bt < 8 && !accepted; ++bt, damping *= real{0.5}) {
      la::copy(u_free_, u_try);
      la::axpy(damping, dx, u_try);
      try {
        rhs_new = residual_at(u_try);
      } catch (const Error&) {
        continue;  // inverted element: halve the step
      }
      const real new_norm = la::nrm2(rhs_new);
      if (std::isfinite(new_norm) &&
          (new_norm <= 4 * rnorm || bt == 7)) {
        accepted = true;
      }
    }
    if (!accepted) break;  // stuck: report non-convergence
    la::copy(u_try, u_free_);
    const real energy = std::fabs(damping * la::dot(dx, rhs));
    rhs = std::move(rhs_new);
    const real new_rnorm = la::nrm2(rhs);

    // Energy-norm convergence test |dx^T r| (§7.2); the residual-drop
    // condition guards against a zero correction from a CG breakdown
    // masquerading as convergence.
    if (m == 0) {
      first_energy = energy;
      first_rnorm = rnorm;
      if (rnorm == 0 || new_rnorm == 0) {
        report.converged = true;
        break;
      }
    } else if (energy < opts_.energy_rtol * first_energy &&
               new_rnorm < real{0.5} * first_rnorm) {
      report.converged = true;
      break;
    }
    // No usable search direction and no progress: give up on this step.
    if (lin.iterations == 0 && lin.breakdown && energy == 0) break;
  }

  // Accept the step: commit plastic state at the converged configuration.
  if (report.converged) {
    const std::vector<real> u_full = dofmap.full_from_free(u_free_, bc_scale);
    prob.assemble(u_full, /*want_stiffness=*/false);
    prob.commit();
    committed_scale_ = bc_scale;
    report.plastic_fraction = prob.plastic_fraction();
  } else {
    PROM_WARN("Newton step did not converge in " << report.newton_iters
                                                 << " iterations");
  }
  return report;
}

NewtonStepReport NewtonDriver::solve_step_adaptive(real target_scale,
                                                   int depth) {
  // Snapshot so a failed attempt can roll back cleanly.
  const std::vector<real> u_saved = u_free_;
  const real scale_saved = committed_scale_;
  std::vector<fem::J2State> state_saved = problem_->snapshot_state();

  NewtonStepReport report;
  bool failed = false;
  try {
    report = solve_step(target_scale);
    failed = !report.converged;
  } catch (const Error&) {
    failed = true;  // e.g. element inversion on the initial trial state
  }
  if (!failed) return report;

  u_free_ = u_saved;
  committed_scale_ = scale_saved;
  problem_->restore_state(std::move(state_saved));
  if (depth >= 3) {
    report.converged = false;
    return report;
  }

  // Two half-steps; aggregate their iteration counts into one report.
  const real mid = scale_saved + (target_scale - scale_saved) / 2;
  NewtonStepReport first = solve_step_adaptive(mid, depth + 1);
  if (!first.converged) return first;
  NewtonStepReport second = solve_step_adaptive(target_scale, depth + 1);
  second.newton_iters += first.newton_iters;
  second.linear_iters.insert(second.linear_iters.begin(),
                             first.linear_iters.begin(),
                             first.linear_iters.end());
  second.linear_rtols.insert(second.linear_rtols.begin(),
                             first.linear_rtols.begin(),
                             first.linear_rtols.end());
  second.residual_norms.insert(second.residual_norms.begin(),
                               first.residual_norms.begin(),
                               first.residual_norms.end());
  return second;
}

std::vector<NewtonStepReport> NewtonDriver::run_load_steps(int num_steps) {
  PROM_CHECK(num_steps >= 1);
  std::vector<NewtonStepReport> reports;
  reports.reserve(static_cast<std::size_t>(num_steps));
  for (int s = 1; s <= num_steps; ++s) {
    reports.push_back(solve_step_adaptive(
        static_cast<real>(s) / static_cast<real>(num_steps), 0));
  }
  return reports;
}

}  // namespace prom::nonlinear
