#include "mg/sa.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/error.h"
#include "common/log.h"
#include "la/vec.h"

namespace prom::mg {
namespace {

/// Per-level algebraic state: the operator, the candidate block B
/// (n x nb, column-major), and the grouping of dofs into "nodes"
/// (vertices on the finest level, aggregates below).
struct SaLevel {
  la::Csr a;
  std::vector<real> b;  // column-major, n rows x nb cols
  int nb = 0;
  std::vector<nnz_t> node_ptr;  // CSR over nodes -> dof lists
  std::vector<idx> node_dofs;
  std::vector<idx> node_of_dof;

  idx n() const { return a.nrows; }
  idx num_nodes() const { return static_cast<idx>(node_ptr.size()) - 1; }
};

/// Node strength graph: F_uv = ||A_uv block||_F; strong iff
/// F_uv > theta * sqrt(F_uu * F_vv).
graph::Graph strength_graph(const SaLevel& lv, real theta) {
  const idx nn = lv.num_nodes();
  // Accumulate block Frobenius norms (squared) per node pair.
  std::map<std::pair<idx, idx>, real> fro2;
  std::vector<real> diag2(static_cast<std::size_t>(nn), 0);
  for (idx i = 0; i < lv.a.nrows; ++i) {
    const idx u = lv.node_of_dof[i];
    for (nnz_t k = lv.a.rowptr[i]; k < lv.a.rowptr[i + 1]; ++k) {
      const idx v = lv.node_of_dof[lv.a.colidx[k]];
      const real w = lv.a.vals[k] * lv.a.vals[k];
      if (u == v) {
        diag2[u] += w;
      } else {
        fro2[{std::min(u, v), std::max(u, v)}] += w;
      }
    }
  }
  std::vector<std::pair<idx, idx>> edges;
  for (const auto& [uv, f2] : fro2) {
    const real bound =
        theta * theta * std::sqrt(diag2[uv.first] * diag2[uv.second]);
    if (f2 > bound) edges.push_back(uv);
  }
  return graph::Graph::from_edges(nn, edges);
}

}  // namespace

std::vector<idx> aggregate_nodes(const graph::Graph& strength,
                                 idx* num_out) {
  const idx nn = strength.num_vertices();
  std::vector<idx> agg(static_cast<std::size_t>(nn), kInvalidIdx);
  idx num_agg = 0;

  // Phase 1 (Vanek et al.): a node whose strong neighborhood is entirely
  // unaggregated becomes the root of a new aggregate with that whole
  // neighborhood.
  for (idx v = 0; v < nn; ++v) {
    if (agg[v] != kInvalidIdx) continue;
    bool clean = true;
    for (idx u : strength.neighbors(v)) {
      if (agg[u] != kInvalidIdx) {
        clean = false;
        break;
      }
    }
    if (!clean) continue;
    const idx id = num_agg++;
    agg[v] = id;
    for (idx u : strength.neighbors(v)) agg[u] = id;
  }

  // Phase 2: attach leftovers to the aggregate they touch most strongly
  // (here: with the most strong edges); isolated leftovers become
  // singleton aggregates.
  for (idx v = 0; v < nn; ++v) {
    if (agg[v] != kInvalidIdx) continue;
    std::map<idx, int> votes;
    for (idx u : strength.neighbors(v)) {
      if (agg[u] != kInvalidIdx) votes[agg[u]]++;
    }
    if (votes.empty()) {
      agg[v] = num_agg++;
      continue;
    }
    idx best = votes.begin()->first;
    int best_votes = votes.begin()->second;
    for (const auto& [id, count] : votes) {
      if (count > best_votes) {
        best = id;
        best_votes = count;
      }
    }
    agg[v] = best;
  }
  if (num_out != nullptr) *num_out = num_agg;
  return agg;
}

std::vector<real> rigid_body_modes(const mesh::Mesh& mesh,
                                   const fem::DofMap& dofmap) {
  const idx n = dofmap.num_free();
  std::vector<real> b(static_cast<std::size_t>(n) * 6, 0);
  const Vec3 center = mesh.bounding_box().center();
  auto set = [&](idx free_index, int col, real value) {
    b[static_cast<std::size_t>(col) * n + free_index] = value;
  };
  for (idx i = 0; i < n; ++i) {
    const idx dof = dofmap.free_dofs()[i];
    const idx v = dof / 3;
    const int comp = static_cast<int>(dof % 3);
    const Vec3 r = mesh.coord(v) - center;
    // Translations.
    set(i, comp, 1);
    // Rotations e_d x r.
    const Vec3 rot[3] = {{0, -r.z, r.y}, {r.z, 0, -r.x}, {-r.y, r.x, 0}};
    for (int d = 0; d < 3; ++d) set(i, 3 + d, rot[d][comp]);
  }
  return b;
}

Hierarchy build_smoothed_aggregation(const mesh::Mesh& mesh,
                                     const fem::DofMap& dofmap,
                                     la::Csr a_fine, const MgOptions& opts,
                                     const SaOptions& sa) {
  PROM_CHECK(a_fine.nrows == dofmap.num_free());
  PROM_CHECK(sa.num_candidates >= 1 && sa.num_candidates <= 6);

  SaLevel lv;
  lv.nb = sa.num_candidates;
  {
    // Candidates: the first nb rigid body modes.
    const std::vector<real> rbm = rigid_body_modes(mesh, dofmap);
    const idx n = a_fine.nrows;
    lv.b.assign(rbm.begin(),
                rbm.begin() + static_cast<std::size_t>(lv.nb) * n);
    // Finest nodes: mesh vertices (with their free dofs).
    std::vector<std::vector<idx>> per_vertex(
        static_cast<std::size_t>(mesh.num_vertices()));
    for (idx i = 0; i < n; ++i) {
      per_vertex[dofmap.free_dofs()[i] / 3].push_back(i);
    }
    lv.node_ptr.push_back(0);
    lv.node_of_dof.assign(static_cast<std::size_t>(n), kInvalidIdx);
    for (const auto& dofs : per_vertex) {
      if (dofs.empty()) continue;  // fully constrained vertex: no node
      for (idx d : dofs) {
        lv.node_of_dof[d] = static_cast<idx>(lv.node_ptr.size()) - 1;
        lv.node_dofs.push_back(d);
      }
      lv.node_ptr.push_back(static_cast<nnz_t>(lv.node_dofs.size()));
    }
  }
  lv.a = std::move(a_fine);

  la::Csr a0 = lv.a;  // keep a copy for the final hierarchy assembly
  std::vector<la::Csr> restrictions;

  for (int level = 0; level + 1 < opts.max_levels; ++level) {
    if (lv.n() <= opts.coarsest_max_dofs) break;

    const graph::Graph strength = strength_graph(lv, sa.strength_theta);
    idx num_agg = 0;
    const std::vector<idx> agg = aggregate_nodes(strength, &num_agg);
    if (num_agg >= lv.num_nodes() || num_agg < 2) {
      PROM_WARN("smoothed aggregation stalled at level " << level);
      break;
    }

    // Dof lists per aggregate.
    std::vector<std::vector<idx>> agg_dofs(static_cast<std::size_t>(num_agg));
    for (idx node = 0; node < lv.num_nodes(); ++node) {
      for (nnz_t k = lv.node_ptr[node]; k < lv.node_ptr[node + 1]; ++k) {
        agg_dofs[agg[node]].push_back(lv.node_dofs[k]);
      }
    }

    // Tentative prolongator: per-aggregate modified Gram-Schmidt of the
    // candidate block; Q becomes the P_tent block, R the coarse
    // candidates. Rank-deficient columns (tiny norms) are dropped, so
    // small aggregates get fewer coarse dofs.
    const idx n = lv.n();
    std::vector<la::Triplet> pt_triplets;
    std::vector<real> coarse_b;     // column-major later; gather rows first
    std::vector<idx> agg_offset(static_cast<std::size_t>(num_agg) + 1, 0);
    std::vector<std::vector<real>> coarse_rows;  // each row: nb entries
    for (idx a = 0; a < num_agg; ++a) {
      const auto& dofs = agg_dofs[a];
      const idx na = static_cast<idx>(dofs.size());
      // Columns of the local candidate block.
      std::vector<std::vector<real>> cols(
          static_cast<std::size_t>(lv.nb),
          std::vector<real>(static_cast<std::size_t>(na)));
      for (int c = 0; c < lv.nb; ++c) {
        for (idx r = 0; r < na; ++r) {
          cols[c][r] = lv.b[static_cast<std::size_t>(c) * n + dofs[r]];
        }
      }
      std::vector<std::vector<real>> q;   // kept orthonormal columns
      std::vector<std::vector<real>> rrow;  // R rows (coefficients vs B)
      for (int c = 0; c < lv.nb; ++c) {
        std::vector<real> w = cols[c];
        const real norm0 = la::nrm2(w);
        std::vector<real> coeff(static_cast<std::size_t>(lv.nb), 0);
        for (std::size_t k = 0; k < q.size(); ++k) {
          const real h = la::dot(q[k], w);
          la::axpy(-h, q[k], w);
          rrow[k][c] = h;
        }
        const real norm1 = la::nrm2(w);
        if (norm1 > 1e-10 * std::max(norm0, real{1e-300}) && norm1 > 0) {
          la::scale(1 / norm1, w);
          q.push_back(std::move(w));
          rrow.emplace_back(static_cast<std::size_t>(lv.nb), real{0});
          rrow.back()[c] = norm1;
        }
      }
      const idx ka = static_cast<idx>(q.size());
      const idx base = agg_offset[a];
      agg_offset[a + 1] = base + ka;
      for (idx k = 0; k < ka; ++k) {
        for (idx r = 0; r < na; ++r) {
          if (q[k][r] != 0) {
            pt_triplets.push_back({dofs[r], base + k, q[k][r]});
          }
        }
        coarse_rows.push_back(std::move(rrow[k]));
      }
    }
    const idx n_coarse = agg_offset[num_agg];
    if (n_coarse >= n || n_coarse < 1) {
      PROM_WARN("smoothed aggregation produced no reduction; stopping");
      break;
    }
    const la::Csr p_tent =
        la::Csr::from_triplets(n, n_coarse, pt_triplets);

    // Prolongator smoothing: P = (I - omega/rho D^{-1} A) P_tent.
    la::Csr dinv_a = lv.a;
    {
      const std::vector<real> d = lv.a.diagonal();
      for (idx i = 0; i < n; ++i) {
        PROM_CHECK_MSG(d[i] != 0, "SA needs a nonzero diagonal");
        for (nnz_t k = dinv_a.rowptr[i]; k < dinv_a.rowptr[i + 1]; ++k) {
          dinv_a.vals[k] /= d[i];
        }
      }
    }
    // Spectral radius estimate of D^{-1}A by power iteration.
    real rho = 1;
    {
      std::vector<real> v(static_cast<std::size_t>(n)), av(v.size());
      for (idx i = 0; i < n; ++i) v[i] = 1 + (i % 5) * 0.2;
      for (int it = 0; it < 12; ++it) {
        dinv_a.spmv(v, av);
        rho = la::nrm2(av);
        if (rho == 0) break;
        for (idx i = 0; i < n; ++i) v[i] = av[i] / rho;
      }
      rho = std::max(rho, real{1e-12});
    }
    la::Csr smoothed = la::spgemm(dinv_a, p_tent);
    for (real& v : smoothed.vals) v *= -(sa.prolongator_omega / rho);
    // P = P_tent + smoothed (sparse sum via triplets).
    std::vector<la::Triplet> sum;
    sum.reserve(static_cast<std::size_t>(p_tent.nnz() + smoothed.nnz()));
    for (idx i = 0; i < n; ++i) {
      for (nnz_t k = p_tent.rowptr[i]; k < p_tent.rowptr[i + 1]; ++k) {
        sum.push_back({i, p_tent.colidx[k], p_tent.vals[k]});
      }
      for (nnz_t k = smoothed.rowptr[i]; k < smoothed.rowptr[i + 1]; ++k) {
        sum.push_back({i, smoothed.colidx[k], smoothed.vals[k]});
      }
    }
    const la::Csr p = la::Csr::from_triplets(n, n_coarse, sum);
    la::Csr r = p.transposed();

    // Next-level state.
    SaLevel next;
    next.nb = lv.nb;
    next.a = la::galerkin_product(r, lv.a);
    next.b.assign(static_cast<std::size_t>(n_coarse) * lv.nb, 0);
    for (idx row = 0; row < n_coarse; ++row) {
      for (int c = 0; c < lv.nb; ++c) {
        next.b[static_cast<std::size_t>(c) * n_coarse + row] =
            coarse_rows[row][c];
      }
    }
    next.node_ptr.push_back(0);
    next.node_of_dof.assign(static_cast<std::size_t>(n_coarse), kInvalidIdx);
    for (idx a = 0; a < num_agg; ++a) {
      if (agg_offset[a + 1] == agg_offset[a]) continue;
      for (idx dof = agg_offset[a]; dof < agg_offset[a + 1]; ++dof) {
        next.node_of_dof[dof] = static_cast<idx>(next.node_ptr.size()) - 1;
        next.node_dofs.push_back(dof);
      }
      next.node_ptr.push_back(static_cast<nnz_t>(next.node_dofs.size()));
    }

    restrictions.push_back(std::move(r));
    lv = std::move(next);
  }

  return Hierarchy::from_operator_chain(std::move(a0),
                                        std::move(restrictions), opts);
}

}  // namespace prom::mg
