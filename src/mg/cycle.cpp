#include "mg/cycle.h"

namespace prom::mg {

void HierarchyCycleView::coarse_solve(std::span<const real> b,
                                      std::span<real> x) const {
  const MgLevel& lv = h->level(h->num_levels() - 1);
  if (lv.sparse_direct != nullptr) {
    lv.sparse_direct->solve(b, x);
  } else if (lv.direct != nullptr) {
    lv.direct->solve(b, x);
  } else if (lv.direct_lu != nullptr) {
    lv.direct_lu->solve(b, x);
  } else {
    // Single-level hierarchy: a few smoothing steps stand in.
    for (int s = 0; s < 4; ++s) lv.smoother->smooth(b, x);
  }
}

void vcycle(const Hierarchy& h, int level, std::span<const real> b,
            std::span<real> x) {
  vcycle_any(HierarchyCycleView{&h}, level, b, x);
}

std::vector<real> fmg_cycle(const Hierarchy& h, std::span<const real> b) {
  return fmg_any(HierarchyCycleView{&h}, b);
}

}  // namespace prom::mg
