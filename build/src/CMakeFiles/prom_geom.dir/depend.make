# Empty dependencies file for prom_geom.
# This may be replaced when dependencies are built.
