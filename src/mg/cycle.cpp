#include "mg/cycle.h"

#include "common/error.h"
#include "la/vec.h"

namespace prom::mg {

void vcycle(const Hierarchy& h, int level, std::span<const real> b,
            std::span<real> x) {
  const MgLevel& lv = h.level(level);
  PROM_CHECK(static_cast<idx>(b.size()) == lv.a.nrows &&
             static_cast<idx>(x.size()) == lv.a.nrows);

  if (level + 1 == h.num_levels()) {
    if (lv.sparse_direct != nullptr) {
      lv.sparse_direct->solve(b, x);
    } else if (lv.direct != nullptr) {
      lv.direct->solve(b, x);
    } else {
      // Single-level hierarchy: a few smoothing steps stand in.
      for (int s = 0; s < 4; ++s) lv.smoother->smooth(b, x);
    }
    return;
  }

  const MgLevel& coarse = h.level(level + 1);
  const MgOptions& opts = h.options();

  for (int s = 0; s < opts.pre_smooth; ++s) lv.smoother->smooth(b, x);

  // Residual and its restriction.
  std::vector<real> r(b.size());
  lv.a.spmv(x, r);
  la::waxpby(1, b, -1, r, r);
  std::vector<real> rc(static_cast<std::size_t>(coarse.a.nrows));
  coarse.r.spmv(r, rc);

  // Coarse-grid correction.
  std::vector<real> xc(rc.size(), 0);
  vcycle(h, level + 1, rc, xc);

  // Prolongate (R^T) and add.
  std::vector<real> dx(x.size());
  coarse.r.spmv_transpose(xc, dx);
  la::axpy(1, dx, x);

  for (int s = 0; s < opts.post_smooth; ++s) lv.smoother->smooth(b, x);
}

std::vector<real> fmg_cycle(const Hierarchy& h, std::span<const real> b) {
  const int nl = h.num_levels();
  // Restrict the right-hand side to every level.
  std::vector<std::vector<real>> bs(static_cast<std::size_t>(nl));
  bs[0].assign(b.begin(), b.end());
  for (int l = 1; l < nl; ++l) {
    bs[l].resize(static_cast<std::size_t>(h.level(l).a.nrows));
    h.level(l).r.spmv(bs[l - 1], bs[l]);
  }

  // Coarsest solve, then work upward: prolongate and V-cycle at each grid.
  std::vector<real> x(bs[nl - 1].size(), 0);
  vcycle(h, nl - 1, bs[nl - 1], x);
  for (int l = nl - 2; l >= 0; --l) {
    std::vector<real> xf(static_cast<std::size_t>(h.level(l).a.nrows));
    h.level(l + 1).r.spmv_transpose(x, xf);
    x = std::move(xf);
    vcycle(h, l, bs[l], x);
  }
  return x;
}

}  // namespace prom::mg
