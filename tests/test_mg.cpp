#include <gtest/gtest.h>

#include <cmath>

#include "app/driver.h"
#include "fem/assembly.h"
#include "la/vec.h"
#include "mesh/generate.h"
#include "mg/cycle.h"
#include "mg/hierarchy.h"
#include "mg/solver.h"

namespace prom::mg {
namespace {

struct BuiltProblem {
  app::ModelProblem model;
  fem::LinearSystem sys;
  Hierarchy hierarchy;
};

BuiltProblem build_box(idx n, const MgOptions& opts = {}) {
  BuiltProblem bp;
  bp.model = app::make_box_problem(n);
  fem::FeProblem fe(bp.model.mesh, bp.model.materials, bp.model.dofmap);
  bp.sys = fem::assemble_linear_system(fe);
  bp.hierarchy = Hierarchy::build(bp.model.mesh, bp.model.dofmap,
                                  bp.sys.stiffness, opts);
  return bp;
}

TEST(Hierarchy, BuildsMultipleLevelsWithShrinkingGrids) {
  MgOptions opts;
  opts.coarsest_max_dofs = 100;
  const BuiltProblem bp = build_box(8, opts);
  ASSERT_GE(bp.hierarchy.num_levels(), 2);
  for (int l = 1; l < bp.hierarchy.num_levels(); ++l) {
    EXPECT_LT(bp.hierarchy.level(l).free_dofs.size(),
              bp.hierarchy.level(l - 1).free_dofs.size());
    EXPECT_GT(bp.hierarchy.level(l).r.nnz(), 0);
  }
  EXPECT_FALSE(bp.hierarchy.describe().empty());
}

TEST(Hierarchy, GalerkinOperatorsSymmetric) {
  const BuiltProblem bp = build_box(6);
  for (int l = 0; l < bp.hierarchy.num_levels(); ++l) {
    EXPECT_LT(bp.hierarchy.level(l).a.symmetry_error(), 1e-10)
        << "level " << l;
  }
}

TEST(Hierarchy, GalerkinIsRART) {
  // A_1 must equal R * A_0 * R^T entry-for-entry.
  MgOptions opts;
  opts.coarsest_max_dofs = 150;
  const BuiltProblem bp = build_box(5, opts);
  if (bp.hierarchy.num_levels() < 2) GTEST_SKIP();
  const la::Csr& a0 = bp.hierarchy.level(0).a;
  const la::Csr& r = bp.hierarchy.level(1).r;
  const la::Csr ref = la::galerkin_product(r, a0);
  const la::Csr& a1 = bp.hierarchy.level(1).a;
  ASSERT_EQ(ref.nnz(), a1.nnz());
  for (std::size_t k = 0; k < ref.vals.size(); ++k) {
    EXPECT_NEAR(ref.vals[k], a1.vals[k], 1e-14);
  }
}

TEST(Vcycle, ReducesErrorEveryCycle) {
  const BuiltProblem bp = build_box(6);
  const la::Csr& a = bp.hierarchy.level(0).a;
  std::vector<real> x_true(a.nrows);
  for (idx i = 0; i < a.nrows; ++i) x_true[i] = std::sin(0.7 * i);
  std::vector<real> b(a.nrows);
  a.spmv(x_true, b);
  std::vector<real> x(a.nrows, 0.0);
  real prev = la::nrm2(b);
  for (int cycle = 0; cycle < 6; ++cycle) {
    vcycle(bp.hierarchy, 0, b, x);
    std::vector<real> r(a.nrows);
    a.spmv(x, r);
    la::waxpby(1, b, -1, r, r);
    const real now = la::nrm2(r);
    EXPECT_LT(now, 0.7 * prev) << "cycle " << cycle;
    prev = now;
  }
}

TEST(Fmg, SingleCycleBeatsSingleVcycle) {
  const BuiltProblem bp = build_box(6);
  const la::Csr& a = bp.hierarchy.level(0).a;
  const std::vector<real>& b = bp.sys.rhs;
  // FMG from zero.
  const std::vector<real> x_fmg = fmg_cycle(bp.hierarchy, b);
  std::vector<real> r(a.nrows);
  a.spmv(x_fmg, r);
  la::waxpby(1, b, -1, r, r);
  const real res_fmg = la::nrm2(r);
  // One V-cycle from zero.
  std::vector<real> x_v(a.nrows, 0.0);
  vcycle(bp.hierarchy, 0, b, x_v);
  a.spmv(x_v, r);
  la::waxpby(1, b, -1, r, r);
  const real res_v = la::nrm2(r);
  EXPECT_LE(res_fmg, res_v * 1.1);
}

class MgCycleKinds : public ::testing::TestWithParam<CycleKind> {};

TEST_P(MgCycleKinds, PcgConvergesTight) {
  const BuiltProblem bp = build_box(7);
  std::vector<real> x(bp.sys.rhs.size(), 0.0);
  MgSolveOptions so;
  so.rtol = 1e-10;
  so.cycle = GetParam();
  const la::KrylovResult res = mg_pcg_solve(bp.hierarchy, bp.sys.rhs, x, so);
  EXPECT_TRUE(res.converged);
  EXPECT_FALSE(res.breakdown);
  EXPECT_LT(res.iterations, 40);
  // Verify against the residual definition.
  std::vector<real> r(bp.sys.rhs.size());
  bp.hierarchy.level(0).a.spmv(x, r);
  la::waxpby(1, bp.sys.rhs, -1, r, r);
  EXPECT_LT(la::nrm2(r) / la::nrm2(bp.sys.rhs), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Cycles, MgCycleKinds,
                         ::testing::Values(CycleKind::kV, CycleKind::kFmg));

TEST(MgSolver, IterationCountMeshIndependent) {
  // The headline multigrid property: iterations stay bounded as the mesh
  // refines (Table 2's near-constant iteration column).
  int prev_iters = 0;
  for (idx n : {6, 9, 12}) {
    const BuiltProblem bp = build_box(n);
    std::vector<real> x(bp.sys.rhs.size(), 0.0);
    MgSolveOptions so;
    so.rtol = 1e-8;
    const la::KrylovResult res =
        mg_pcg_solve(bp.hierarchy, bp.sys.rhs, x, so);
    ASSERT_TRUE(res.converged) << "n = " << n;
    EXPECT_LT(res.iterations, 30);
    if (prev_iters > 0) {
      EXPECT_LE(res.iterations, prev_iters + 5);
    }
    prev_iters = res.iterations;
  }
}

TEST(MgSolver, MaterialJumpsHandled) {
  // The sphere problem's 1e4 coefficient jump + near-incompressibility.
  mesh::SphereInCubeParams sp;
  sp.num_shells = 5;
  sp.base_core_layers = 1;
  sp.base_outer_layers = 1;
  const app::ModelProblem model = app::make_sphere_problem(sp, 0.36);
  fem::FeProblem fe(model.mesh, model.materials, model.dofmap);
  const fem::LinearSystem sys = fem::assemble_linear_system(fe);
  MgOptions opts;
  opts.coarsest_max_dofs = 300;
  const Hierarchy h =
      Hierarchy::build(model.mesh, model.dofmap, sys.stiffness, opts);
  std::vector<real> x(sys.rhs.size(), 0.0);
  MgSolveOptions so;
  so.rtol = 1e-4;  // the paper's first-solve tolerance
  so.max_iters = 120;
  const la::KrylovResult res = mg_pcg_solve(h, sys.rhs, x, so);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(res.iterations, 80);
}

TEST(Hierarchy, UpdateFineMatrixRebuildsChain) {
  MgOptions opts;
  opts.coarsest_max_dofs = 150;
  BuiltProblem bp = build_box(5, opts);
  if (bp.hierarchy.num_levels() < 2) GTEST_SKIP();
  // Scale the fine operator by 2: all coarse operators must double.
  la::Csr scaled = bp.hierarchy.level(0).a;
  for (real& v : scaled.vals) v *= 2;
  const real before = bp.hierarchy.level(1).a.vals[0];
  bp.hierarchy.update_fine_matrix(std::move(scaled));
  const real after = bp.hierarchy.level(1).a.vals[0];
  EXPECT_NEAR(after, 2 * before, 1e-12 * std::abs(before));
  // Solver still works after the update.
  std::vector<real> x(bp.sys.rhs.size(), 0.0);
  MgSolveOptions so;
  so.rtol = 1e-8;
  EXPECT_TRUE(mg_pcg_solve(bp.hierarchy, bp.sys.rhs, x, so).converged);
}

TEST(MgOptions, SmootherKindsAllConverge) {
  for (SmootherKind kind : {SmootherKind::kJacobi,
                            SmootherKind::kSymGaussSeidel,
                            SmootherKind::kBlockJacobi}) {
    MgOptions opts;
    opts.smoother = kind;
    const BuiltProblem bp = build_box(6, opts);
    std::vector<real> x(bp.sys.rhs.size(), 0.0);
    MgSolveOptions so;
    so.rtol = 1e-8;
    so.max_iters = 100;
    const la::KrylovResult res =
        mg_pcg_solve(bp.hierarchy, bp.sys.rhs, x, so);
    EXPECT_TRUE(res.converged) << "smoother " << static_cast<int>(kind);
  }
}

}  // namespace
}  // namespace prom::mg
