file(REMOVE_RECURSE
  "../bench/bench_fig13_nonlinear"
  "../bench/bench_fig13_nonlinear.pdb"
  "CMakeFiles/bench_fig13_nonlinear.dir/bench_fig13_nonlinear.cpp.o"
  "CMakeFiles/bench_fig13_nonlinear.dir/bench_fig13_nonlinear.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_nonlinear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
