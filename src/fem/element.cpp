#include "fem/element.h"

#include <cmath>

#include "common/error.h"
#include "common/flops.h"
#include "fem/quadrature.h"
#include "fem/shape.h"

namespace prom::fem {
namespace {

ShapeEval shape_at(int nodes, const Vec3& xi) {
  return nodes == 8 ? hex8_shape(xi) : tet4_shape(xi);
}

std::span<const GaussPoint> rule_for(int nodes) {
  return nodes == 8 ? hex_gauss_8() : tet_gauss_4();
}

/// C : B for a symmetric second-order tensor B.
Mat3 contract_tangent(const Tangent& c, const Mat3& b) {
  Mat3 out = Mat3::zero();
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      real sum = 0;
      for (int k = 0; k < 3; ++k) {
        for (int l = 0; l < 3; ++l) {
          sum += tangent_at(c, i, j, k, l) * b(k, l);
        }
      }
      out(i, j) = sum;
    }
  }
  return out;
}

}  // namespace

int gauss_points_per_cell(int nodes) { return nodes == 8 ? 8 : 4; }

int small_strain_element(const Material& mat, std::span<const Vec3> coords,
                         std::span<const real> disp, bool bbar,
                         std::span<const J2State> committed,
                         std::span<J2State> updated,
                         la::DenseMatrix* stiffness, std::span<real> f_int) {
  const int nen = static_cast<int>(coords.size());
  PROM_CHECK(nen == 8 || nen == 4);
  PROM_CHECK(static_cast<int>(disp.size()) == 3 * nen);
  const auto rule = rule_for(nen);
  const bool plastic_model = mat.model == MaterialModel::kJ2Plasticity;
  if (plastic_model) {
    PROM_CHECK(static_cast<int>(committed.size()) ==
                   static_cast<int>(rule.size()) &&
               committed.size() == updated.size());
  }

  if (stiffness != nullptr) {
    PROM_CHECK(stiffness->rows() == 3 * nen && stiffness->cols() == 3 * nen);
    for (real& v : stiffness->data()) v = 0;
  }
  if (!f_int.empty()) {
    PROM_CHECK(static_cast<int>(f_int.size()) == 3 * nen);
    for (real& v : f_int) v = 0;
  }

  // B-bar: element-mean physical gradients (mean dilatation).
  std::array<Vec3, kMaxNodes> mean_grad{};
  if (bbar) {
    real vol = 0;
    for (const GaussPoint& gp : rule) {
      const ShapeEval shape = shape_at(nen, gp.xi);
      const PhysicalGrads pg = physical_gradients(shape, coords);
      const real w = gp.w * pg.detJ;
      vol += w;
      for (int a = 0; a < nen; ++a) mean_grad[a] += pg.grad[a] * w;
    }
    for (int a = 0; a < nen; ++a) mean_grad[a] *= real{1} / vol;
  }

  Tangent c_ep;
  if (mat.model == MaterialModel::kLinearElastic) elastic_tangent(mat, c_ep);

  int plastic_points = 0;
  // Strain-displacement tensors: bop[a*3+k] is the strain produced by a
  // unit displacement of node a in direction k.
  std::vector<Mat3> bop(static_cast<std::size_t>(3) * nen);
  std::vector<Mat3> cb(static_cast<std::size_t>(3) * nen);

  for (std::size_t q = 0; q < rule.size(); ++q) {
    const GaussPoint& gp = rule[q];
    const ShapeEval shape = shape_at(nen, gp.xi);
    const PhysicalGrads pg = physical_gradients(shape, coords);
    const real w = gp.w * pg.detJ;

    for (int a = 0; a < nen; ++a) {
      const Vec3& g = pg.grad[a];
      const Vec3 gm = bbar ? (mean_grad[a] - g) * (real{1} / 3) : Vec3{};
      for (int k = 0; k < 3; ++k) {
        Mat3 b = Mat3::zero();
        for (int j = 0; j < 3; ++j) {
          b(k, j) += real{0.5} * g[j];
          b(j, k) += real{0.5} * g[j];
        }
        if (bbar) {
          for (int j = 0; j < 3; ++j) b(j, j) += gm[k];
        }
        bop[a * 3 + k] = b;
      }
    }

    // Strain at this Gauss point.
    Mat3 strain = Mat3::zero();
    for (int a = 0; a < nen; ++a) {
      for (int k = 0; k < 3; ++k) {
        const real ua = disp[a * 3 + k];
        if (ua != 0) strain += bop[a * 3 + k] * ua;
      }
    }

    // Constitutive update.
    Mat3 stress;
    if (plastic_model) {
      if (j2_radial_return(mat, strain, committed[q], updated[q], stress,
                           c_ep)) {
        ++plastic_points;
      }
    } else {
      stress = contract_tangent(c_ep, strain);
    }

    if (!f_int.empty()) {
      for (int a = 0; a < nen; ++a) {
        for (int k = 0; k < 3; ++k) {
          f_int[a * 3 + k] += w * double_contract(bop[a * 3 + k], stress);
        }
      }
    }

    if (stiffness != nullptr) {
      for (int b = 0; b < 3 * nen; ++b) cb[b] = contract_tangent(c_ep, bop[b]);
      for (int a = 0; a < 3 * nen; ++a) {
        for (int b = 0; b < 3 * nen; ++b) {
          (*stiffness)(a, b) += w * double_contract(bop[a], cb[b]);
        }
      }
      count_flops(3LL * nen * 81 + 9LL * nen * nen * 9);
    }
  }
  return plastic_points;
}

void total_lagrangian_element(const Material& mat,
                              std::span<const Vec3> coords,
                              std::span<const real> disp, bool fbar,
                              la::DenseMatrix* stiffness,
                              std::span<real> f_int) {
  const int nen = static_cast<int>(coords.size());
  PROM_CHECK(nen == 8 || nen == 4);
  PROM_CHECK(static_cast<int>(disp.size()) == 3 * nen);
  PROM_CHECK(mat.model == MaterialModel::kNeoHookean);
  const auto rule = rule_for(nen);

  if (stiffness != nullptr) {
    PROM_CHECK(stiffness->rows() == 3 * nen && stiffness->cols() == 3 * nen);
    for (real& v : stiffness->data()) v = 0;
  }
  if (!f_int.empty()) {
    PROM_CHECK(static_cast<int>(f_int.size()) == 3 * nen);
    for (real& v : f_int) v = 0;
  }

  auto deformation_gradient = [&](const PhysicalGrads& pg) {
    Mat3 f = Mat3::identity();
    for (int a = 0; a < nen; ++a) {
      for (int i = 0; i < 3; ++i) {
        for (int j = 0; j < 3; ++j) {
          f(i, j) += disp[a * 3 + i] * pg.grad[a][j];
        }
      }
    }
    return f;
  };

  // F-bar: centroid Jacobian determinant.
  real centroid_j = 1;
  if (fbar) {
    const Vec3 xi_c = nen == 8 ? Vec3{0, 0, 0} : Vec3{0.25, 0.25, 0.25};
    const ShapeEval shape = shape_at(nen, xi_c);
    const PhysicalGrads pg = physical_gradients(shape, coords);
    centroid_j = det(deformation_gradient(pg));
    PROM_CHECK_MSG(centroid_j > 0, "F-bar: inverted element at centroid");
  }

  Tangent a_tan;
  for (const GaussPoint& gp : rule) {
    const ShapeEval shape = shape_at(nen, gp.xi);
    const PhysicalGrads pg = physical_gradients(shape, coords);
    const real w = gp.w * pg.detJ;

    Mat3 f = deformation_gradient(pg);
    if (fbar) {
      const real jq = det(f);
      PROM_CHECK_MSG(jq > 0, "F-bar: non-positive det F");
      f *= std::cbrt(centroid_j / jq);
    }

    Mat3 pk1;
    neo_hookean_stress(mat, f, pk1, a_tan);

    if (!f_int.empty()) {
      for (int a = 0; a < nen; ++a) {
        for (int i = 0; i < 3; ++i) {
          real sum = 0;
          for (int jj = 0; jj < 3; ++jj) sum += pk1(i, jj) * pg.grad[a][jj];
          f_int[a * 3 + i] += w * sum;
        }
      }
    }

    if (stiffness != nullptr) {
      // t[b][k](i, J) = sum_L A_iJkL * grad_b[L]
      for (int b = 0; b < nen; ++b) {
        for (int k = 0; k < 3; ++k) {
          Mat3 t = Mat3::zero();
          for (int i = 0; i < 3; ++i) {
            for (int jj = 0; jj < 3; ++jj) {
              real sum = 0;
              for (int l = 0; l < 3; ++l) {
                sum += tangent_at(a_tan, i, jj, k, l) * pg.grad[b][l];
              }
              t(i, jj) = sum;
            }
          }
          for (int a = 0; a < nen; ++a) {
            for (int i = 0; i < 3; ++i) {
              real sum = 0;
              for (int jj = 0; jj < 3; ++jj) sum += pg.grad[a][jj] * t(i, jj);
              (*stiffness)(a * 3 + i, b * 3 + k) += w * sum;
            }
          }
        }
      }
      count_flops(3LL * nen * (27 + 9LL * nen));
    }
  }
}

}  // namespace prom::fem
