#include "app/service.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "common/error.h"
#include "dla/dist_vec.h"
#include "obs/trace.h"
#include "partition/rcb.h"
#include "parx/runtime.h"

namespace prom::app {

int rhs_block_from_env() {
  const char* env = std::getenv("PROM_RHS_BLOCK");
  if (env == nullptr || *env == '\0') return 8;
  const int v = std::atoi(env);
  PROM_CHECK_MSG(v >= 1 && v <= la::kMaxRhsBlock,
                 "PROM_RHS_BLOCK must be in [1, la::kMaxRhsBlock]");
  return v;
}

void SolveService::register_problem(std::string mesh_id,
                                    ModelProblem problem) {
  register_problem(std::move(mesh_id),
                   std::make_shared<const ModelProblem>(std::move(problem)));
}

void SolveService::register_problem(
    std::string mesh_id, std::shared_ptr<const ModelProblem> problem) {
  PROM_CHECK(problem != nullptr);
  problems_[std::move(mesh_id)] = std::move(problem);
}

std::string SolveService::fingerprint(const std::string& mesh_id,
                                      int refine_rounds) const {
  if (refine_rounds < 0) refine_rounds = config_.refine_rounds;
  // Every knob that shapes the grids, the operators, or their
  // distribution. Two requests agreeing on all of these may share a
  // hierarchy; any difference must build a distinct entry. The equation
  // class comes from the registered problem (block size 1 vs 3 changes
  // every level operator); an unregistered id keys as elasticity and
  // fails in build_entry anyway.
  EquationClass eq = EquationClass::kElasticity;
  const auto pit = problems_.find(mesh_id);
  if (pit != problems_.end()) eq = pit->second->equation;
  const mg::MgOptions& mo = config_.mg;
  const coarsen::CoarsenOptions& co = mo.coarsen;
  std::ostringstream os;
  os << mesh_id << "|eq=" << static_cast<int>(eq) << "|p=" << config_.nranks
     << "|fmt=" << static_cast<int>(config_.format)
     << "|cyc=" << static_cast<int>(config_.cycle)
     << "|L=" << mo.max_levels << "|cmax=" << mo.coarsest_max_dofs
     << "|ratio=" << mo.min_coarsen_ratio
     << "|sm=" << static_cast<int>(mo.smoother) << "|w=" << mo.omega
     << "|bj=" << mo.bj_blocks_per_1000 << "|cheb=" << mo.cheby_degree
     << "|pre=" << mo.pre_smooth << "|post=" << mo.post_smooth
     << "|cs=" << static_cast<int>(mo.coarse_solver)
     << "|agg=" << mo.agglom_min_rows
     << "|mod=" << co.modify_graph << "|rcl=" << co.reclassify_from_level
     << "|ext=" << static_cast<int>(co.exterior_order)
     << "|int=" << static_cast<int>(co.interior_order) << "|seed=" << co.seed
     << "|ref=" << refine_rounds << "|rfrac=" << config_.refine_fraction;
  return os.str();
}

EntryHandle SolveService::acquire(const std::string& mesh_id,
                                  int refine_rounds) {
  if (refine_rounds < 0) refine_rounds = config_.refine_rounds;
  std::string key = fingerprint(mesh_id, refine_rounds);
  // The cache span covers only the lookup: the miss path's phase.* setup
  // spans must stay top-level for the report builder to count them.
  {
    const obs::Span span("service.cache");
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      obs::counter_add("service.cache.hit", 1);
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second);
      return *it->second;
    }
    obs::counter_add("service.cache.miss", 1);
    ++misses_;
  }
  EntryHandle entry = build_entry(mesh_id, std::move(key), refine_rounds);
  lru_.push_front(entry);
  cache_.emplace(entry->key, lru_.begin());
  if (static_cast<int>(lru_.size()) > std::max(1, config_.cache_capacity)) {
    // Drop the least recently used entry; callers holding its handle keep
    // a valid setup (shared ownership), the cache just forgets it.
    cache_.erase(lru_.back()->key);
    lru_.pop_back();
  }
  return entry;
}

EntryHandle SolveService::build_entry(const std::string& mesh_id,
                                      std::string key, int refine_rounds) {
  const auto pit = problems_.find(mesh_id);
  PROM_CHECK_MSG(pit != problems_.end(),
                 "SolveService: unknown mesh id (register_problem first)");
  auto entry = std::make_shared<ServiceEntry>();
  entry->key = std::move(key);
  entry->problem = pit->second;
  const ModelProblem& problem = *entry->problem;
  const bool scalar = problem.equation != EquationClass::kElasticity;

  // The blocked (bsr3) and matrix-free formats are elasticity-only: both
  // are built around the 3-dof node block (la::Bsr3 / the element
  // kernels), and the scalar classes have no node blocks to form. Reject
  // the combination here — at entry — instead of letting the scalar path
  // silently fall back to CSR or trip an assert deep in the distributed
  // setup.
  PROM_CHECK_MSG(!scalar || config_.format == mg::MatrixFormat::kCsr,
                 config_.format == mg::MatrixFormat::kBsr3
                     ? "SolveService: scalar equation classes (poisson_het, "
                       "advdiff) support only PROM_MATRIX=csr; "
                       "PROM_MATRIX=bsr3 is elasticity-only"
                     : "SolveService: scalar equation classes (poisson_het, "
                       "advdiff) support only PROM_MATRIX=csr; "
                       "PROM_MATRIX=mf is elasticity-only");

  if (refine_rounds > 0) {
    const obs::Span span("phase.refine");
    AdaptiveOptions aopts;
    aopts.rounds = refine_rounds;
    aopts.mark_fraction = config_.refine_fraction;
    aopts.mg = config_.mg;
    aopts.cycle = config_.cycle;
    entry->refined = std::make_unique<AdaptiveLoop>(
        run_adaptive_refinement(problem, aopts));
  }
  const AdaptiveLoop* refined = entry->refined.get();

  {
    const obs::Span span("phase.partition");
    const mesh::Mesh& pmesh =
        refined != nullptr ? refined->final_mesh() : problem.mesh;
    entry->vertex_owner =
        partition::rcb_partition(pmesh.coords(), config_.nranks);
    if (refined != nullptr) {
      // How lopsided the refined mesh would be under the *unrefined*
      // partition (midpoints inheriting a parent's rank) vs the fresh
      // RCB cut the entry actually uses.
      const std::vector<idx> base_owner = partition::rcb_partition(
          refined->base.coords(), config_.nranks);
      obs::gauge_set(
          "refine.imbalance.inherited",
          partition_imbalance(inherit_owners(*refined, base_owner),
                              config_.nranks));
      obs::gauge_set("refine.imbalance.rebalanced",
                     partition_imbalance(entry->vertex_owner,
                                         config_.nranks));
    }
  }
  {
    const obs::Span span("phase.fine_grid");
    if (refined != nullptr) {
      entry->sys = std::move(entry->refined->sys);
    } else if (scalar) {
      fem::ScalarSystem sys = fem::assemble_scalar_system(
          problem.mesh, problem.scalar_dofmap, problem.coeffs);
      entry->sys.stiffness = std::move(sys.stiffness);
      entry->sys.rhs = std::move(sys.rhs);
    } else {
      fem::FeProblem fe(problem.mesh, problem.materials, problem.dofmap);
      entry->sys = fem::assemble_linear_system(fe);
    }
  }
  entry->unknowns = entry->sys.stiffness.nrows;
  {
    const obs::Span span("phase.mesh_setup");
    if (refined != nullptr) {
      entry->grids =
          scalar ? mg::Hierarchy::build_grids_refined_scalar(
                       refined->mesh_ptrs(), refined->scalar_dofmap_ptrs(),
                       refined->rounds, entry->sys.stiffness, config_.mg)
                 : mg::Hierarchy::build_grids_refined(
                       refined->mesh_ptrs(), refined->dofmap_ptrs(),
                       refined->rounds, entry->sys.stiffness, config_.mg);
    } else {
      entry->grids =
          scalar
              ? mg::Hierarchy::build_grids_scalar(problem.mesh,
                                                  problem.scalar_dofmap,
                                                  entry->sys.stiffness,
                                                  config_.mg)
              : mg::Hierarchy::build_grids(problem.mesh, problem.dofmap,
                                           entry->sys.stiffness, config_.mg);
    }
  }

  entry->per_rank.resize(static_cast<std::size_t>(config_.nranks));
  entry->workspaces.resize(static_cast<std::size_t>(config_.nranks));
  parx::Runtime::run(config_.nranks, [&](parx::Comm& comm) {
    comm.barrier();
    const obs::Span span("phase.matrix_setup");
    // The matrix-free view is elasticity-only (enforced above), so the
    // scalar paths keep the unrefined pointers — the struct is unused.
    const bool mf_refined = !scalar && refined != nullptr;
    const dla::MfProblem mf{
        mf_refined ? &refined->final_mesh() : &problem.mesh,
        &problem.materials,
        mf_refined ? &refined->final_dofmap() : &problem.dofmap,
        /*bbar=*/true};
    entry->per_rank[comm.rank()] = dla::DistHierarchy::build(
        comm, entry->grids, entry->vertex_owner, config_.format,
        config_.format == mg::MatrixFormat::kMf ? &mf : nullptr);
    comm.barrier();
  });
  return entry;
}

SolveResponse SolveService::solve(const SolveRequest& req) {
  const std::int64_t hits_before = hits_;
  const EntryHandle entry = acquire(req.mesh_id, req.refine_rounds);
  SolveResponse resp = solve_with(entry, req);
  resp.cache_hit = hits_ > hits_before;
  return resp;
}

SolveResponse SolveService::solve_with(const EntryHandle& entry,
                                       const SolveRequest& req) const {
  PROM_CHECK(entry != nullptr);
  const int p = config_.nranks;

  // The request's right-hand sides, defaulting to the assembled load
  // vector (serial free-dof numbering either way).
  la::MultiVec b;
  if (req.rhs.rows() == 0 && req.rhs.cols() == 0) {
    b.resize(entry->unknowns, 1);
    std::copy(entry->sys.rhs.begin(), entry->sys.rhs.end(),
              b.col(0).begin());
  } else {
    PROM_CHECK_MSG(req.rhs.rows() == entry->unknowns,
                   "SolveRequest::rhs rows must equal the free-dof count");
    b = req.rhs;
  }
  const int ktotal = b.cols();
  const int kblock = rhs_block_from_env();

  SolveResponse resp;
  resp.results.resize(static_cast<std::size_t>(ktotal));
  if (req.return_solutions) resp.solutions.resize(entry->unknowns, ktotal);

  mg::MgSolveOptions so;
  so.rtol = req.rtol;
  so.max_iters = req.max_iters;
  so.cycle = config_.cycle;
  so.format = config_.format;
  so.track_history = req.track_history;
  so.krylov = default_krylov(entry->problem->equation);

  parx::Runtime::run(p, [&](parx::Comm& comm) {
    const int rank = comm.rank();
    dla::DistHierarchy& dist = entry->per_rank[rank];
    const std::vector<idx>& perm = dist.permutation(0);
    const dla::RowDist& rows = dist.level(0).a.row_dist();
    const idx b0 = rows.begin(rank);
    const idx nloc = rows.local_size(rank);

    comm.barrier();
    const obs::Span solve_span("phase.solve");
    for (int j0 = 0; j0 < ktotal; j0 += kblock) {
      const int k = std::min(kblock, ktotal - j0);
      const obs::Span batch_span("solve.batch");
      la::MultiVec b_local(nloc, k);
      la::MultiVec x_local(nloc, k);
      for (int j = 0; j < k; ++j) {
        real* bl = b_local.col_data(j);
        const real* bs = b.col_data(j0 + j);
        for (idx i = 0; i < nloc; ++i) bl[i] = bs[perm[b0 + i]];
      }
      std::vector<la::KrylovResult> results;
      if (so.krylov == la::KrylovKind::kPcg) {
        results = dla::dist_mg_pcg_solve_mv(comm, dist, b_local, x_local, so,
                                            &entry->workspaces[rank]);
      } else {
        // Non-symmetric classes: no blocked GMRES/BiCGStab driver, so the
        // chunk's columns solve one at a time (the chunking itself stays,
        // keeping request shapes identical to the SPD path).
        results.resize(static_cast<std::size_t>(k));
        for (int j = 0; j < k; ++j) {
          results[static_cast<std::size_t>(j)] = dla::dist_mg_krylov_solve(
              comm, dist, b_local.col(j), x_local.col(j), so);
        }
      }
      if (req.return_solutions) {
        const la::MultiVec x_full =
            dla::dist_gather_all_mv(comm, rows, x_local);
        if (rank == 0) {
          for (int j = 0; j < k; ++j) {
            real* out = resp.solutions.col_data(j0 + j);
            const real* xf = x_full.col_data(j);
            for (idx g = 0; g < entry->unknowns; ++g) out[perm[g]] = xf[g];
          }
        }
      }
      if (rank == 0) {
        for (int j = 0; j < k; ++j) resp.results[j0 + j] = results[j];
      }
    }
    comm.barrier();
  });
  return resp;
}

}  // namespace prom::app
