#include "mg/solver.h"

namespace prom::mg {

void MgPreconditioner::apply(std::span<const real> x,
                             std::span<real> y) const {
  apply_cycle(HierarchyCycleView{h_}, kind_, x, y);
}

la::KrylovResult mg_pcg_solve(const Hierarchy& h, std::span<const real> b,
                              std::span<real> x, const MgSolveOptions& opts) {
  const MgPreconditioner precond(h, opts.cycle);
  const la::CsrOperator a(h.level(0).a);
  return la::pcg(a, precond, b, x, to_krylov_options(opts));
}

}  // namespace prom::mg
