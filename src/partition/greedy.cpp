#include "partition/greedy.h"

#include <algorithm>
#include <deque>
#include <numeric>

#include "common/error.h"
#include "partition/rcb.h"

namespace prom::partition {

std::vector<idx> greedy_graph_partition(const graph::Graph& g, idx nparts,
                                        const GreedyOptions& opts) {
  const idx n = g.num_vertices();
  PROM_CHECK(nparts >= 1);
  std::vector<idx> part(static_cast<std::size_t>(n), kInvalidIdx);
  if (nparts == 1) {
    std::fill(part.begin(), part.end(), 0);
    return part;
  }

  // Grow parts one at a time by BFS from a pseudo-peripheral unassigned
  // vertex; each part takes its proportional share of the remainder.
  idx assigned = 0;
  for (idx p = 0; p < nparts; ++p) {
    const idx target = (n - assigned) / (nparts - p);
    if (target == 0) continue;
    // Seed: unassigned vertex of minimum degree (cheap peripheral proxy).
    idx seed = kInvalidIdx;
    for (idx v = 0; v < n; ++v) {
      if (part[v] == kInvalidIdx &&
          (seed == kInvalidIdx || g.degree(v) < g.degree(seed))) {
        seed = v;
      }
    }
    PROM_CHECK(seed != kInvalidIdx);
    std::deque<idx> queue{seed};
    part[seed] = p;
    idx grown = 1;
    while (!queue.empty() && grown < target) {
      const idx v = queue.front();
      queue.pop_front();
      for (idx u : g.neighbors(v)) {
        if (part[u] == kInvalidIdx && grown < target) {
          part[u] = p;
          ++grown;
          queue.push_back(u);
        }
      }
      // Disconnected remainder: restart from a fresh unassigned seed.
      if (queue.empty() && grown < target) {
        for (idx v2 = 0; v2 < n; ++v2) {
          if (part[v2] == kInvalidIdx) {
            part[v2] = p;
            ++grown;
            queue.push_back(v2);
            break;
          }
        }
      }
    }
    assigned += grown;
  }
  // Sweep up any stragglers into the last part.
  for (idx v = 0; v < n; ++v) {
    if (part[v] == kInvalidIdx) part[v] = nparts - 1;
  }

  // Boundary refinement: move a vertex to the neighboring part where it
  // has the most neighbors, when that strictly reduces the cut and keeps
  // both parts within the imbalance bound.
  std::vector<idx> sizes = part_sizes(part, nparts);
  const double max_size = opts.imbalance * static_cast<double>(n) / nparts;
  std::vector<idx> gain(static_cast<std::size_t>(nparts), 0);
  for (int pass = 0; pass < opts.refine_passes; ++pass) {
    bool moved = false;
    for (idx v = 0; v < n; ++v) {
      const idx home = part[v];
      if (sizes[home] <= 1) continue;
      // Count v's neighbors per part.
      std::vector<idx> touched;
      for (idx u : g.neighbors(v)) {
        if (gain[part[u]] == 0) touched.push_back(part[u]);
        gain[part[u]]++;
      }
      idx best = home;
      for (idx p : touched) {
        if (p != home && gain[p] > gain[best] &&
            sizes[p] + 1 <= static_cast<idx>(max_size)) {
          best = p;
        }
      }
      if (best != home && gain[best] > gain[home]) {
        part[v] = best;
        sizes[home]--;
        sizes[best]++;
        moved = true;
      }
      for (idx p : touched) gain[p] = 0;
    }
    if (!moved) break;
  }
  return part;
}

nnz_t edge_cut(const graph::Graph& g, std::span<const idx> part) {
  nnz_t cut = 0;
  for (idx v = 0; v < g.num_vertices(); ++v) {
    for (idx u : g.neighbors(v)) {
      if (u > v && part[u] != part[v]) ++cut;
    }
  }
  return cut;
}

std::vector<std::vector<idx>> block_jacobi_blocks(const graph::Graph& g,
                                                  idx blocks_per_1000,
                                                  idx min_blocks) {
  const idx n = g.num_vertices();
  const idx nblocks = std::max<idx>(
      min_blocks,
      static_cast<idx>((static_cast<nnz_t>(n) * blocks_per_1000 + 999) / 1000));
  if (nblocks >= n) {
    // Degenerate: one vertex per block.
    std::vector<std::vector<idx>> blocks;
    for (idx v = 0; v < n; ++v) blocks.push_back({v});
    return blocks;
  }
  const std::vector<idx> part = greedy_graph_partition(g, nblocks);
  // parts_to_blocks keeps empty parts as empty blocks (aligned with part
  // ids); the block-Jacobi factorization wants one block per non-empty
  // dof set, so drop the empties here.
  std::vector<std::vector<idx>> blocks = parts_to_blocks(part, nblocks);
  std::erase_if(blocks, [](const auto& b) { return b.empty(); });
  return blocks;
}

}  // namespace prom::partition
