#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>

#include "common/error.h"
#include "mesh/generate.h"
#include "mesh/io.h"
#include "parx/runtime.h"

namespace prom::mesh {
namespace {

// Per-process temp path: ctest runs each registered test as its own process,
// so the pid suffix keeps concurrent `ctest -j` invocations (and repeated
// runs sharing TMPDIR) from clobbering each other's files.
std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + std::to_string(::getpid()) + "." + name;
}

void expect_meshes_equal(const Mesh& a, const Mesh& b) {
  ASSERT_EQ(a.kind(), b.kind());
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_cells(), b.num_cells());
  for (idx v = 0; v < a.num_vertices(); ++v) {
    EXPECT_NEAR(distance(a.coord(v), b.coord(v)), 0.0, 1e-14);
  }
  for (idx e = 0; e < a.num_cells(); ++e) {
    EXPECT_EQ(a.material(e), b.material(e));
    const auto va = a.cell(e), vb = b.cell(e);
    for (std::size_t i = 0; i < va.size(); ++i) EXPECT_EQ(va[i], vb[i]);
  }
}

TEST(FlatMesh, SerialRoundTripHex) {
  const Mesh m = box_hex(3, 2, 4, {0, 0, 0}, {3, 2, 4});
  const std::string path = temp_path("roundtrip_hex.pm");
  ASSERT_TRUE(write_flat_mesh(path, m));
  const Mesh back = read_flat_mesh(path);
  expect_meshes_equal(m, back);
  std::remove(path.c_str());
}

TEST(FlatMesh, SerialRoundTripWithMaterials) {
  SphereInCubeParams p;
  p.num_shells = 3;
  p.base_core_layers = 1;
  p.base_outer_layers = 1;
  const Mesh m = sphere_in_cube_octant(p);
  const std::string path = temp_path("roundtrip_sphere.pm");
  ASSERT_TRUE(write_flat_mesh(path, m));
  const Mesh back = read_flat_mesh(path);
  expect_meshes_equal(m, back);
  std::remove(path.c_str());
}

TEST(FlatMesh, CoordinatesSurviveAtFullPrecision) {
  // %24.16e must round-trip doubles exactly enough for identity.
  std::vector<Vec3> coords = {{1.0 / 3.0, -2.718281828459045e-7, 1e20},
                              {0, -0, 5e-324},
                              {123456.789012345678, 1, -1},
                              {0.1, 0.2, 0.3}};
  std::vector<idx> cells = {0, 1, 2, 3};
  const Mesh m(CellKind::kTet4, coords, cells, {7});
  const std::string path = temp_path("precision.pm");
  ASSERT_TRUE(write_flat_mesh(path, m));
  const Mesh back = read_flat_mesh(path);
  for (idx v = 0; v < 4; ++v) {
    EXPECT_EQ(back.coord(v).x, m.coord(v).x);
    EXPECT_EQ(back.coord(v).y, m.coord(v).y);
    EXPECT_EQ(back.coord(v).z, m.coord(v).z);
  }
  std::remove(path.c_str());
}

TEST(FlatMesh, ReadMissingFileThrows) {
  EXPECT_THROW(read_flat_mesh(temp_path("does_not_exist.pm")), Error);
}

TEST(FlatMesh, ReadGarbageHeaderThrows) {
  const std::string path = temp_path("garbage.pm");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("this is not a prom mesh file at all; padding padding pad\n",
             f);
  std::fclose(f);
  EXPECT_THROW(read_flat_mesh(path), Error);
  std::remove(path.c_str());
}

class FlatMeshRanks : public ::testing::TestWithParam<int> {};

TEST_P(FlatMeshRanks, ParallelSlicesPartitionTheFile) {
  const int p = GetParam();
  const Mesh m = box_hex(4, 4, 3, {0, 0, 0}, {4, 4, 3});
  // Parametrized instances run as separate ctest tests and may execute
  // concurrently under `ctest -j`; each needs its own file, or one instance
  // removes/rewrites the file while another's rank threads read it (a rank
  // that throws mid-collective deadlocks the remaining ranks).
  const std::string path = temp_path("parallel." + std::to_string(p) + ".pm");
  ASSERT_TRUE(write_flat_mesh(path, m));

  std::vector<FlatMeshSlice> slices(static_cast<std::size_t>(p));
  parx::Runtime::run(p, [&](parx::Comm& comm) {
    slices[comm.rank()] = read_flat_mesh_slice(comm, path);
  });
  idx total_vertices = 0, total_cells = 0;
  idx expected_vertex_begin = 0, expected_cell_begin = 0;
  for (const FlatMeshSlice& s : slices) {
    EXPECT_EQ(s.num_vertices_total, m.num_vertices());
    EXPECT_EQ(s.num_cells_total, m.num_cells());
    EXPECT_EQ(s.vertex_begin, expected_vertex_begin);  // contiguous slices
    EXPECT_EQ(s.cell_begin, expected_cell_begin);
    expected_vertex_begin += static_cast<idx>(s.coords.size());
    expected_cell_begin += static_cast<idx>(s.cell_material.size());
    total_vertices += static_cast<idx>(s.coords.size());
    total_cells += static_cast<idx>(s.cell_material.size());
    // Slice content matches the source mesh.
    for (std::size_t i = 0; i < s.coords.size(); ++i) {
      EXPECT_NEAR(distance(s.coords[i],
                           m.coord(s.vertex_begin + static_cast<idx>(i))),
                  0.0, 1e-14);
    }
  }
  EXPECT_EQ(total_vertices, m.num_vertices());
  EXPECT_EQ(total_cells, m.num_cells());
  std::remove(path.c_str());
}

TEST_P(FlatMeshRanks, GatherReassemblesOriginalMesh) {
  const int p = GetParam();
  const Mesh m = box_hex(3, 3, 3, {0, 0, 0}, {1, 1, 1});
  const std::string path = temp_path("gather." + std::to_string(p) + ".pm");
  ASSERT_TRUE(write_flat_mesh(path, m));
  std::vector<char> ok(static_cast<std::size_t>(p), 0);
  parx::Runtime::run(p, [&](parx::Comm& comm) {
    const FlatMeshSlice slice = read_flat_mesh_slice(comm, path);
    const Mesh gathered = gather_flat_mesh(comm, slice);
    ok[comm.rank()] =
        gathered.num_vertices() == m.num_vertices() &&
        gathered.num_cells() == m.num_cells() &&
        distance(gathered.coord(5), m.coord(5)) < 1e-14 &&
        gathered.material(m.num_cells() - 1) == m.material(m.num_cells() - 1);
  });
  for (char c : ok) EXPECT_TRUE(c);
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Ranks, FlatMeshRanks, ::testing::Values(1, 2, 3, 5));

}  // namespace
}  // namespace prom::mesh
