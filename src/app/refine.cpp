#include "app/refine.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "common/error.h"
#include "fem/indicator.h"
#include "mg/solver.h"
#include "obs/trace.h"

namespace prom::app {

int refine_rounds_from_env() {
  const char* env = std::getenv("PROM_REFINE");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  PROM_CHECK_MSG(end != env && *end == '\0' && v >= 0 && v <= 64,
                 "PROM_REFINE must be a non-negative integer");
  return static_cast<int>(v);
}

std::vector<const mesh::Mesh*> AdaptiveLoop::mesh_ptrs() const {
  std::vector<const mesh::Mesh*> ptrs{&base};
  for (const mesh::RefineResult& r : rounds) ptrs.push_back(&r.mesh);
  return ptrs;
}

std::vector<const fem::DofMap*> AdaptiveLoop::dofmap_ptrs() const {
  std::vector<const fem::DofMap*> ptrs;
  for (const fem::DofMap& dm : dofmaps) ptrs.push_back(&dm);
  return ptrs;
}

std::vector<const fem::ScalarDofMap*> AdaptiveLoop::scalar_dofmap_ptrs()
    const {
  std::vector<const fem::ScalarDofMap*> ptrs;
  for (const fem::ScalarDofMap& dm : scalar_dofmaps) ptrs.push_back(&dm);
  return ptrs;
}

namespace {

fem::DofMap refit_dofmap(const ModelProblem& p, const mesh::Mesh& m) {
  fem::DofMap dm(m.num_vertices());
  p.fix_bcs(m, dm);
  dm.finalize();
  return dm;
}

fem::ScalarDofMap refit_scalar_dofmap(const ModelProblem& p,
                                      const mesh::Mesh& m) {
  fem::ScalarDofMap dm(m.num_vertices());
  p.fix_scalar_bcs(m, dm);
  dm.finalize();
  return dm;
}

/// Assembles the problem's system on the loop's current (finest) mesh.
fem::LinearSystem assemble_current(const ModelProblem& p,
                                   const AdaptiveLoop& loop) {
  const mesh::Mesh& m = loop.final_mesh();
  if (p.equation == EquationClass::kElasticity) {
    fem::FeProblem fe(m, p.materials, loop.dofmaps.back());
    return fem::assemble_linear_system(fe);
  }
  fem::ScalarSystem sys =
      fem::assemble_scalar_system(m, loop.scalar_dofmaps.back(), p.coeffs);
  return {std::move(sys.stiffness), std::move(sys.rhs)};
}

/// Serial estimate hierarchy on the current mesh family: the refined
/// build once rounds exist, the plain MIS build before the first one.
mg::Hierarchy estimate_hierarchy(const ModelProblem& p,
                                 const AdaptiveLoop& loop, la::Csr a,
                                 const mg::MgOptions& mg) {
  const bool scalar = p.equation != EquationClass::kElasticity;
  if (loop.rounds.empty()) {
    return scalar ? mg::Hierarchy::build_scalar(
                        loop.base, loop.scalar_dofmaps.back(), std::move(a),
                        mg)
                  : mg::Hierarchy::build(loop.base, loop.dofmaps.back(),
                                         std::move(a), mg);
  }
  return scalar ? mg::Hierarchy::build_refined_scalar(
                      loop.mesh_ptrs(), loop.scalar_dofmap_ptrs(),
                      loop.rounds, std::move(a), mg)
                : mg::Hierarchy::build_refined(loop.mesh_ptrs(),
                                               loop.dofmap_ptrs(),
                                               loop.rounds, std::move(a), mg);
}

}  // namespace

AdaptiveLoop run_adaptive_refinement(const ModelProblem& problem,
                                     const AdaptiveOptions& opts) {
  const bool scalar = problem.equation != EquationClass::kElasticity;
  PROM_CHECK_MSG(
      scalar ? bool(problem.fix_scalar_bcs) : bool(problem.fix_bcs),
      "run_adaptive_refinement: the problem must provide the constraint "
      "re-fixer for its equation kind (ModelProblem::fix_bcs / "
      "fix_scalar_bcs; every app factory sets it)");

  AdaptiveLoop loop;
  loop.base = mesh::hex_to_tet(problem.mesh);
  if (scalar) {
    loop.scalar_dofmaps.push_back(refit_scalar_dofmap(problem, loop.base));
  } else {
    loop.dofmaps.push_back(refit_dofmap(problem, loop.base));
  }

  mg::MgSolveOptions so;
  so.rtol = opts.estimate_rtol;
  so.max_iters = opts.max_iters;
  so.cycle = opts.cycle;
  so.krylov = default_krylov(problem.equation);

  for (int round = 0; round < opts.rounds; ++round) {
    const obs::Span span("refine.round", round);
    const mesh::Mesh& m = loop.final_mesh();

    // Estimate solve on the current mesh.
    fem::LinearSystem sys = assemble_current(problem, loop);
    loop.round_unknowns.push_back(sys.stiffness.nrows);
    la::Csr a = sys.stiffness;
    const mg::Hierarchy h =
        estimate_hierarchy(problem, loop, std::move(a), opts.mg);
    std::vector<real> x(sys.rhs.size(), 0);
    mg::mg_krylov_solve(h, sys.rhs, x, so);

    // Indicate, mark, bisect.
    const std::vector<real> u_full =
        scalar ? loop.scalar_dofmaps.back().full_from_free(x)
               : loop.dofmaps.back().full_from_free(x);
    const std::vector<real> eta =
        scalar ? fem::scalar_error_indicator(m, u_full, problem.coeffs)
               : fem::elasticity_error_indicator(m, u_full,
                                                 problem.materials);
    const std::vector<idx> marked =
        mesh::mark_fraction(eta, opts.mark_fraction);
    obs::counter_add("refine.marked", static_cast<double>(marked.size()));
    loop.rounds.push_back(mesh::refine_local(m, marked));

    const mesh::Mesh& fm = loop.rounds.back().mesh;
    if (scalar) {
      loop.scalar_dofmaps.push_back(refit_scalar_dofmap(problem, fm));
    } else {
      loop.dofmaps.push_back(refit_dofmap(problem, fm));
    }
    obs::gauge_set("refine.cells", static_cast<double>(fm.num_cells()));
  }

  loop.sys = assemble_current(problem, loop);
  loop.round_unknowns.push_back(loop.sys.stiffness.nrows);
  obs::gauge_set("refine.unknowns",
                 static_cast<double>(loop.sys.stiffness.nrows));
  return loop;
}

std::vector<idx> inherit_owners(const AdaptiveLoop& loop,
                                std::span<const idx> base_owner) {
  PROM_CHECK(static_cast<idx>(base_owner.size()) ==
             loop.base.num_vertices());
  std::vector<idx> owner(base_owner.begin(), base_owner.end());
  for (const mesh::RefineResult& round : loop.rounds) {
    PROM_CHECK(static_cast<idx>(owner.size()) == round.num_parent_vertices);
    owner.reserve(owner.size() + round.vertex_parents.size());
    for (const auto& par : round.vertex_parents) {
      owner.push_back(owner[par[0]]);
    }
  }
  return owner;
}

real partition_imbalance(std::span<const idx> owner, int nranks) {
  PROM_CHECK(nranks > 0 && !owner.empty());
  std::vector<idx> load(static_cast<std::size_t>(nranks), 0);
  for (idx r : owner) {
    PROM_CHECK(r >= 0 && r < nranks);
    ++load[r];
  }
  const real mean =
      static_cast<real>(owner.size()) / static_cast<real>(nranks);
  idx max_load = 0;
  for (idx l : load) max_load = std::max(max_load, l);
  return static_cast<real>(max_load) / mean;
}

}  // namespace prom::app
