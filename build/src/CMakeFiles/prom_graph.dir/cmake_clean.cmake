file(REMOVE_RECURSE
  "CMakeFiles/prom_graph.dir/graph/graph.cpp.o"
  "CMakeFiles/prom_graph.dir/graph/graph.cpp.o.d"
  "CMakeFiles/prom_graph.dir/graph/mis.cpp.o"
  "CMakeFiles/prom_graph.dir/graph/mis.cpp.o.d"
  "CMakeFiles/prom_graph.dir/graph/order.cpp.o"
  "CMakeFiles/prom_graph.dir/graph/order.cpp.o.d"
  "libprom_graph.a"
  "libprom_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prom_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
