file(REMOVE_RECURSE
  "libprom_nonlinear.a"
)
