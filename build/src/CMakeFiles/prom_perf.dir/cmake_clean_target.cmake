file(REMOVE_RECURSE
  "libprom_perf.a"
)
