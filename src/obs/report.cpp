#include "obs/report.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>

#include "common/error.h"
#include "obs/json.h"

namespace prom::obs {

namespace {

constexpr std::string_view kPhasePrefix = "phase.";

bool is_phase_span(const SpanRecord& s) {
  return std::string_view(s.name).substr(0, kPhasePrefix.size()) ==
         kPhasePrefix;
}

double span_seconds(const SpanRecord& s) {
  return static_cast<double>(s.t1_ns - s.t0_ns) / 1e9;
}

void append_number(std::string& out, double v) {
  char buf[48];
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else if (std::isfinite(v)) {
    std::snprintf(buf, sizeof buf, "%.9g", v);
  } else {
    std::snprintf(buf, sizeof buf, "null");  // JSON has no NaN/Inf
  }
  out += buf;
}

void append_metrics(std::string& out, const char* key,
                    const std::vector<MetricEntry>& entries) {
  out += "  \"";
  out += key;
  out += "\": [";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const MetricEntry& e = entries[i];
    out += i == 0 ? "\n" : ",\n";
    char buf[64];
    out += "    {\"name\": \"" + json::escaped(e.name) + "\", \"level\": ";
    std::snprintf(buf, sizeof buf, "%d", e.level);
    out += buf;
    out += ", \"value\": ";
    append_number(out, e.value);
    out += "}";
  }
  out += entries.empty() ? "]" : "\n  ]";
}

}  // namespace

double PhaseEntry::seconds() const {
  return host_seconds > 0 ? host_seconds : max_rank_seconds();
}

double PhaseEntry::max_rank_seconds() const {
  double m = 0;
  for (const RankPhase& r : per_rank) m = std::max(m, r.seconds);
  return m;
}

const PhaseEntry* Report::phase(std::string_view name) const {
  for (const PhaseEntry& p : phases) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

double Report::phase_seconds(std::string_view name) const {
  const PhaseEntry* p = phase(name);
  return p == nullptr ? 0 : p->seconds();
}

const ComponentEntry* Report::component(std::string_view name,
                                        int level) const {
  for (const ComponentEntry& c : components) {
    if (c.name == name && c.level == level) return &c;
  }
  return nullptr;
}

double Report::gauge(std::string_view name, int level) const {
  for (const MetricEntry& g : gauges) {
    if (g.name == name && g.level == level) return g.value;
  }
  return std::nan("");
}

double Report::counter(std::string_view name, int level) const {
  for (const MetricEntry& c : counters) {
    if (c.name == name && c.level == level) return c.value;
  }
  return 0;
}

const SeriesEntry* Report::find_series(std::string_view name) const {
  for (const SeriesEntry& s : series) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

Report build_report(std::int64_t mark_ns) {
  const Tracer& tracer = Tracer::instance();
  std::vector<SpanRecord> spans = tracer.spans_since(mark_ns);
  std::vector<MetricRecord> metrics = tracer.metrics_since(mark_ns);

  Report rep;
  int max_rank = kHostRank;
  for (const SpanRecord& s : spans) max_rank = std::max(max_rank, s.rank);
  for (const MetricRecord& m : metrics) max_rank = std::max(max_rank, m.rank);
  rep.ranks = max_rank + 1;

  // Phases: top-level "phase.*" spans, in order of first open time.
  std::stable_sort(spans.begin(), spans.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     return a.t0_ns < b.t0_ns;
                   });
  for (const SpanRecord& s : spans) {
    if (s.depth != 0 || !is_phase_span(s)) continue;
    const std::string name(std::string_view(s.name).substr(kPhasePrefix.size()));
    PhaseEntry* entry = nullptr;
    for (PhaseEntry& p : rep.phases) {
      if (p.name == name) entry = &p;
    }
    if (entry == nullptr) {
      rep.phases.push_back(PhaseEntry{name, 0, {}, 0, 0, 0});
      entry = &rep.phases.back();
    }
    if (s.rank == kHostRank) {
      entry->host_seconds += span_seconds(s);
      continue;
    }
    auto it = std::find_if(entry->per_rank.begin(), entry->per_rank.end(),
                           [&](const RankPhase& r) { return r.rank == s.rank; });
    if (it == entry->per_rank.end()) {
      entry->per_rank.push_back(RankPhase{s.rank, 0, 0, 0, 0});
      it = entry->per_rank.end() - 1;
    }
    it->seconds += span_seconds(s);
    it->messages += s.messages;
    it->bytes += s.bytes;
    it->flops += s.flops;
  }
  for (PhaseEntry& p : rep.phases) {
    std::sort(p.per_rank.begin(), p.per_rank.end(),
              [](const RankPhase& a, const RankPhase& b) {
                return a.rank < b.rank;
              });
    for (const RankPhase& r : p.per_rank) {
      p.messages += r.messages;
      p.bytes += r.bytes;
      p.flops += r.flops;
    }
  }

  // Components: every non-phase span grouped by (name, level); per-rank
  // second sums feed max_rank_seconds.
  struct CompAccum {
    ComponentEntry entry;
    std::map<int, double> rank_seconds;
  };
  std::map<std::pair<std::string, int>, CompAccum> comps;
  for (const SpanRecord& s : spans) {
    if (is_phase_span(s)) continue;
    CompAccum& acc = comps[{std::string(s.name), s.level}];
    acc.entry.name = s.name;
    acc.entry.level = s.level;
    acc.entry.seconds += span_seconds(s);
    acc.entry.count += 1;
    acc.entry.messages += s.messages;
    acc.entry.bytes += s.bytes;
    acc.entry.flops += s.flops;
    acc.rank_seconds[s.rank] += span_seconds(s);
  }
  for (auto& [key, acc] : comps) {
    for (const auto& [rank, sec] : acc.rank_seconds) {
      acc.entry.max_rank_seconds = std::max(acc.entry.max_rank_seconds, sec);
    }
    rep.components.push_back(std::move(acc.entry));
  }

  // Counters sum; gauges keep the latest write; series come from one
  // representative thread per name (collective backends record identical
  // series on every rank — prefer the host, else the lowest rank).
  std::map<std::pair<std::string, int>, double> counter_sums;
  std::map<std::pair<std::string, int>, std::pair<std::int64_t, double>>
      gauge_last;
  std::map<std::pair<std::string, int>, std::map<std::pair<int, std::uint32_t>,
                                                 std::vector<double>>>
      series_by_thread;
  for (const MetricRecord& m : metrics) {
    const std::pair<std::string, int> key{std::string(m.name), m.level};
    switch (m.kind) {
      case MetricKind::kCounter:
        counter_sums[key] += m.value;
        break;
      case MetricKind::kGauge: {
        auto [it, inserted] = gauge_last.try_emplace(key, m.t_ns, m.value);
        if (!inserted && m.t_ns >= it->second.first) {
          it->second = {m.t_ns, m.value};
        }
        break;
      }
      case MetricKind::kSeries: {
        // Host records sort before ranks: key by (is_rank, rank, tid).
        const int rank_key = m.rank == kHostRank ? -1 : m.rank;
        series_by_thread[key][{rank_key, m.tid}].push_back(m.value);
        break;
      }
    }
  }
  for (const auto& [key, v] : counter_sums) {
    rep.counters.push_back(MetricEntry{key.first, key.second, v});
  }
  for (const auto& [key, tv] : gauge_last) {
    rep.gauges.push_back(MetricEntry{key.first, key.second, tv.second});
  }
  for (const auto& [key, threads] : series_by_thread) {
    rep.series.push_back(
        SeriesEntry{key.first, key.second, threads.begin()->second});
  }

  // Derived gauge: grid/operator complexity from the per-level nnz
  // counters, when the fine level is present.
  const double fine_nnz = [&] {
    for (const MetricEntry& c : rep.counters) {
      if (c.name == "mg.nnz" && c.level == 0) return c.value;
    }
    return 0.0;
  }();
  if (fine_nnz > 0) {
    double total = 0;
    for (const MetricEntry& c : rep.counters) {
      if (c.name == "mg.nnz") total += c.value;
    }
    rep.gauges.push_back(
        MetricEntry{"mg.operator_complexity", kNoLevel, total / fine_nnz});
  }
  return rep;
}

std::string Report::to_json() const {
  std::string out;
  out.reserve(4096);
  char buf[256];
  out += "{\n  \"schema\": \"";
  out += kReportSchema;
  out += "\",\n  \"ranks\": ";
  std::snprintf(buf, sizeof buf, "%d", ranks);
  out += buf;
  out += ",\n  \"phases\": [";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const PhaseEntry& p = phases[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"" + json::escaped(p.name) + "\", \"seconds\": ";
    append_number(out, p.seconds());
    out += ", \"host_seconds\": ";
    append_number(out, p.host_seconds);
    std::snprintf(buf, sizeof buf,
                  ", \"messages\": %" PRId64 ", \"bytes\": %" PRId64
                  ", \"flops\": %" PRId64 ", \"per_rank\": [",
                  p.messages, p.bytes, p.flops);
    out += buf;
    for (std::size_t r = 0; r < p.per_rank.size(); ++r) {
      const RankPhase& rp = p.per_rank[r];
      if (r > 0) out += ", ";
      std::snprintf(buf, sizeof buf,
                    "{\"rank\": %d, \"seconds\": %.9g, \"messages\": %" PRId64
                    ", \"bytes\": %" PRId64 ", \"flops\": %" PRId64 "}",
                    rp.rank, rp.seconds, rp.messages, rp.bytes, rp.flops);
      out += buf;
    }
    out += "]}";
  }
  out += phases.empty() ? "]" : "\n  ]";
  out += ",\n  \"components\": [";
  for (std::size_t i = 0; i < components.size(); ++i) {
    const ComponentEntry& c = components[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"" + json::escaped(c.name) + "\", \"level\": ";
    std::snprintf(buf, sizeof buf, "%d", c.level);
    out += buf;
    out += ", \"seconds\": ";
    append_number(out, c.seconds);
    out += ", \"max_rank_seconds\": ";
    append_number(out, c.max_rank_seconds);
    std::snprintf(buf, sizeof buf,
                  ", \"count\": %" PRId64 ", \"messages\": %" PRId64
                  ", \"bytes\": %" PRId64 ", \"flops\": %" PRId64 "}",
                  c.count, c.messages, c.bytes, c.flops);
    out += buf;
  }
  out += components.empty() ? "]" : "\n  ]";
  out += ",\n";
  append_metrics(out, "counters", counters);
  out += ",\n";
  append_metrics(out, "gauges", gauges);
  out += ",\n  \"series\": [";
  for (std::size_t i = 0; i < series.size(); ++i) {
    const SeriesEntry& s = series[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"" + json::escaped(s.name) + "\", \"level\": ";
    std::snprintf(buf, sizeof buf, "%d", s.level);
    out += buf;
    out += ", \"values\": [";
    for (std::size_t k = 0; k < s.values.size(); ++k) {
      if (k > 0) out += ", ";
      append_number(out, s.values[k]);
    }
    out += "]}";
  }
  out += series.empty() ? "]" : "\n  ]";
  out += "\n}\n";
  return out;
}

void Report::write_json(const std::string& path) const {
  const std::string text = to_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  PROM_CHECK_MSG(f != nullptr, "cannot open report output: " + path);
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
}

namespace {

std::int64_t as_int64(const json::Value& v) {
  return static_cast<std::int64_t>(v.as_number());
}

std::vector<MetricEntry> parse_metrics(const json::Value& arr) {
  std::vector<MetricEntry> out;
  for (const json::Value& m : arr.items()) {
    out.push_back(MetricEntry{m.at("name").as_string(),
                              static_cast<int>(m.at("level").as_number()),
                              m.at("value").as_number()});
  }
  return out;
}

}  // namespace

Report Report::from_json(std::string_view text) {
  const json::Value doc = json::Value::parse(text);
  PROM_CHECK_MSG(doc.at("schema").as_string() == kReportSchema,
                 "unexpected report schema: " + doc.at("schema").as_string());
  Report rep;
  rep.ranks = static_cast<int>(doc.at("ranks").as_number());
  for (const json::Value& p : doc.at("phases").items()) {
    PhaseEntry entry;
    entry.name = p.at("name").as_string();
    entry.host_seconds = p.at("host_seconds").as_number();
    entry.messages = as_int64(p.at("messages"));
    entry.bytes = as_int64(p.at("bytes"));
    entry.flops = as_int64(p.at("flops"));
    for (const json::Value& r : p.at("per_rank").items()) {
      entry.per_rank.push_back(RankPhase{
          static_cast<int>(r.at("rank").as_number()),
          r.at("seconds").as_number(), as_int64(r.at("messages")),
          as_int64(r.at("bytes")), as_int64(r.at("flops"))});
    }
    rep.phases.push_back(std::move(entry));
  }
  for (const json::Value& c : doc.at("components").items()) {
    rep.components.push_back(ComponentEntry{
        c.at("name").as_string(), static_cast<int>(c.at("level").as_number()),
        c.at("seconds").as_number(), c.at("max_rank_seconds").as_number(),
        as_int64(c.at("count")), as_int64(c.at("messages")),
        as_int64(c.at("bytes")), as_int64(c.at("flops"))});
  }
  rep.counters = parse_metrics(doc.at("counters"));
  rep.gauges = parse_metrics(doc.at("gauges"));
  for (const json::Value& s : doc.at("series").items()) {
    SeriesEntry entry;
    entry.name = s.at("name").as_string();
    entry.level = static_cast<int>(s.at("level").as_number());
    for (const json::Value& v : s.at("values").items()) {
      entry.values.push_back(v.as_number());
    }
    rep.series.push_back(std::move(entry));
  }
  return rep;
}

Report Report::read_json(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  PROM_CHECK_MSG(f != nullptr, "cannot open report: " + path);
  std::string text;
  char buf[4096];
  for (std::size_t got; (got = std::fread(buf, 1, sizeof buf, f)) > 0;) {
    text.append(buf, got);
  }
  std::fclose(f);
  return from_json(text);
}

}  // namespace prom::obs
