
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mesh/generate.cpp" "src/CMakeFiles/prom_mesh.dir/mesh/generate.cpp.o" "gcc" "src/CMakeFiles/prom_mesh.dir/mesh/generate.cpp.o.d"
  "/root/repo/src/mesh/io.cpp" "src/CMakeFiles/prom_mesh.dir/mesh/io.cpp.o" "gcc" "src/CMakeFiles/prom_mesh.dir/mesh/io.cpp.o.d"
  "/root/repo/src/mesh/mesh.cpp" "src/CMakeFiles/prom_mesh.dir/mesh/mesh.cpp.o" "gcc" "src/CMakeFiles/prom_mesh.dir/mesh/mesh.cpp.o.d"
  "/root/repo/src/mesh/vtk.cpp" "src/CMakeFiles/prom_mesh.dir/mesh/vtk.cpp.o" "gcc" "src/CMakeFiles/prom_mesh.dir/mesh/vtk.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/prom_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prom_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prom_parx.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/prom_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
