#!/usr/bin/env python3
"""Bench regression gate: diff fresh BENCH_*.json files against the
committed baselines in bench/baselines/ and fail on a throughput
regression beyond the tolerance in any named series.

Series are the time-valued leaves of each BENCH file (keys ending in
`_ns` / `_s`, or the literal `ns`), flattened to dotted names; rows of a
`sweep` array are keyed by their identifying fields (ranks / threads / k /
level) so the same configuration is compared across runs. Derived ratio
series (`speedup`, `*_per_s`) are *not* gated — they are quotients of two
gated times and would double-count the same regression — and tiny
baselines below the noise floor are skipped, since a smoke-sized bench
cannot measure them meaningfully.

A series present in the baseline but missing from the fresh output fails
the gate (a renamed or dropped series must come with a baseline refresh,
see the README's "Refreshing bench baselines"); brand-new series pass
with a note and start gating once committed to the baseline.

Exit status: 0 = within tolerance, 1 = regression or missing series,
2 = usage/IO error. Stdlib only.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

# Fields that identify a sweep row rather than measure it.
KEY_FIELDS = ("ranks", "threads", "k", "level")

# Noise floors: baselines below these cannot be compared meaningfully on
# a shared CI runner (timer resolution + scheduler jitter).
DEFAULT_FLOOR_NS = 10_000.0  # 10 us
DEFAULT_FLOOR_S = 1e-3  # 1 ms

DEFAULT_FILES = ("BENCH_kernels.json", "BENCH_halo.json", "BENCH_service.json",
                 "BENCH_equations.json", "BENCH_refine.json")


def flatten(prefix: str, node, out: dict[str, float]) -> None:
    """Collects every numeric leaf under dotted names; sweep rows are keyed
    by their identifying fields so row order never matters."""
    if isinstance(node, dict):
        for key, value in node.items():
            flatten(f"{prefix}.{key}" if prefix else key, value, out)
    elif isinstance(node, list):
        for i, row in enumerate(node):
            if not isinstance(row, dict):
                continue
            ident = ",".join(
                f"{f}={row[f]}" for f in KEY_FIELDS if f in row
            )
            label = f"{prefix}[{ident or i}]"
            for key, value in row.items():
                if key in KEY_FIELDS:
                    continue
                flatten(f"{label}.{key}", value, out)
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        out[prefix] = float(node)


def time_unit(name: str) -> str | None:
    """'ns' / 's' for gated time series, None for everything else
    (identifiers, counts, and derived ratios such as speedup/*_per_s)."""
    leaf = name.rsplit(".", 1)[-1]
    if leaf.endswith("_per_s"):
        return None
    if leaf == "ns" or leaf.endswith("_ns"):
        return "ns"
    if leaf.endswith("_s"):
        return "s"
    return None


def load_series(path: str) -> dict[str, float]:
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    out: dict[str, float] = {}
    flatten("", doc, out)
    return out


def compare_file(
    name: str,
    baseline: dict[str, float],
    fresh: dict[str, float],
    tol: float,
    floor_ns: float,
    floor_s: float,
) -> list[str]:
    failures: list[str] = []
    for series in sorted(baseline):
        unit = time_unit(series)
        if unit is None:
            continue
        base = baseline[series]
        if series not in fresh:
            failures.append(
                f"{name}: series '{series}' missing from fresh output "
                "(refresh bench/baselines/ if it was renamed)"
            )
            continue
        got = fresh[series]
        floor = floor_ns if unit == "ns" else floor_s
        if base < floor:
            print(f"  skip  {name}:{series} baseline {base:g}{unit} "
                  f"below noise floor {floor:g}{unit}")
            continue
        ratio = got / base if base > 0 else float("inf")
        verdict = "  ok  "
        if ratio > 1 + tol:
            verdict = " FAIL "
            failures.append(
                f"{name}: {series} regressed {100 * (ratio - 1):.1f}% "
                f"({base:g}{unit} -> {got:g}{unit}, tol {100 * tol:.0f}%)"
            )
        print(f"{verdict}{name}:{series} {base:g}{unit} -> {got:g}{unit} "
              f"({100 * (ratio - 1):+.1f}%)")
    for series in sorted(set(fresh) - set(baseline)):
        if time_unit(series) is not None:
            print(f"  new   {name}:{series} = {fresh[series]:g} "
                  "(ungated until added to the baseline)")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Fail on bench throughput regressions vs baselines.")
    parser.add_argument("--baseline-dir", default="bench/baselines")
    parser.add_argument("--fresh-dir", default="bench-artifacts")
    parser.add_argument("--files", default=",".join(DEFAULT_FILES),
                        help="comma-separated BENCH_*.json names to compare")
    parser.add_argument("--tol", type=float,
                        default=float(os.environ.get("PROM_BENCH_TOL", 0.25)),
                        help="allowed fractional slowdown (default 0.25)")
    parser.add_argument("--floor-ns", type=float, default=DEFAULT_FLOOR_NS)
    parser.add_argument("--floor-s", type=float, default=DEFAULT_FLOOR_S)
    args = parser.parse_args()

    failures: list[str] = []
    compared = 0
    for name in [f for f in args.files.split(",") if f]:
        base_path = os.path.join(args.baseline_dir, name)
        fresh_path = os.path.join(args.fresh_dir, name)
        if not os.path.exists(base_path):
            print(f"  note  no baseline {base_path} — skipping {name}")
            continue
        if not os.path.exists(fresh_path):
            failures.append(f"{name}: fresh output {fresh_path} not found")
            continue
        try:
            baseline = load_series(base_path)
            fresh = load_series(fresh_path)
        except (OSError, json.JSONDecodeError) as err:
            print(f"error reading {name}: {err}", file=sys.stderr)
            return 2
        compared += 1
        failures += compare_file(name, baseline, fresh, args.tol,
                                 args.floor_ns, args.floor_s)

    if compared == 0 and not failures:
        print("bench_compare: no baselines found — nothing gated")
        return 0
    if failures:
        print("\nbench_compare: FAIL")
        for f in failures:
            print(f"  {f}")
        print("If the regression is expected (or the series set changed), "
              "refresh bench/baselines/ (see README) or put [bench-skip] "
              "in the commit message.")
        return 1
    print("\nbench_compare: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
