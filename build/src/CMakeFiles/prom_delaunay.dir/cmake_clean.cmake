file(REMOVE_RECURSE
  "CMakeFiles/prom_delaunay.dir/delaunay/delaunay.cpp.o"
  "CMakeFiles/prom_delaunay.dir/delaunay/delaunay.cpp.o.d"
  "libprom_delaunay.a"
  "libprom_delaunay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prom_delaunay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
