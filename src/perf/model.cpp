#include "perf/model.h"

#include <algorithm>

namespace prom::perf {

std::int64_t PhaseStats::total_flops() const {
  std::int64_t sum = 0;
  for (const auto& r : per_rank) sum += r.flops;
  return sum;
}

std::int64_t PhaseStats::max_flops() const {
  std::int64_t mx = 0;
  for (const auto& r : per_rank) mx = std::max(mx, r.flops);
  return mx;
}

double PhaseStats::average_flops() const {
  return per_rank.empty()
             ? 0.0
             : static_cast<double>(total_flops()) /
                   static_cast<double>(per_rank.size());
}

std::int64_t PhaseStats::total_messages() const {
  std::int64_t sum = 0;
  for (const auto& r : per_rank) sum += r.messages_sent;
  return sum;
}

std::int64_t PhaseStats::total_bytes() const {
  std::int64_t sum = 0;
  for (const auto& r : per_rank) sum += r.bytes_sent;
  return sum;
}

double PhaseStats::load_balance() const {
  const std::int64_t mx = max_flops();
  return mx == 0 ? 1.0 : average_flops() / static_cast<double>(mx);
}

double PhaseStats::modeled_time(const MachineModel& m) const {
  double worst = 0;
  for (const auto& r : per_rank) {
    worst = std::max(worst, m.rank_time(r.flops, r.messages_sent,
                                        r.bytes_sent));
  }
  return worst;
}

double PhaseStats::modeled_flop_rate(const MachineModel& m) const {
  const double t = modeled_time(m);
  return t == 0 ? 0 : static_cast<double>(total_flops()) / t;
}

}  // namespace prom::perf
