#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <set>

#include "mesh/generate.h"
#include "mesh/mesh.h"
#include "mesh/vtk.h"

namespace prom::mesh {
namespace {

TEST(BoxHex, CountsAndVolume) {
  const Mesh m = box_hex(3, 4, 5, {0, 0, 0}, {3, 4, 5});
  EXPECT_EQ(m.num_vertices(), 4 * 5 * 6);
  EXPECT_EQ(m.num_cells(), 60);
  EXPECT_NEAR(m.volume(), 60.0, 1e-10);
  for (idx e = 0; e < m.num_cells(); ++e) {
    EXPECT_NEAR(cell_volume(m, e), 1.0, 1e-12);
  }
}

TEST(BoxHex, VertexGraphIsCellClique) {
  const Mesh m = box_hex(2, 2, 2, {0, 0, 0}, {1, 1, 1});
  const graph::Graph g = m.vertex_graph();
  EXPECT_TRUE(g.is_symmetric());
  // The center vertex of a 2x2x2 box touches all 8 cells and hence all
  // other 26 vertices.
  idx center = kInvalidIdx;
  for (idx v = 0; v < m.num_vertices(); ++v) {
    if (m.coord(v) == Vec3{0.5, 0.5, 0.5}) center = v;
  }
  ASSERT_NE(center, kInvalidIdx);
  EXPECT_EQ(g.degree(center), 26);
  // A corner vertex touches one cell: 7 neighbors.
  idx corner = kInvalidIdx;
  for (idx v = 0; v < m.num_vertices(); ++v) {
    if (m.coord(v) == Vec3{0, 0, 0}) corner = v;
  }
  EXPECT_EQ(g.degree(corner), 7);
}

TEST(BoxHex, BoundaryFacetCount) {
  const idx n = 3;
  const Mesh m = box_hex(n, n, n, {0, 0, 0}, {1, 1, 1});
  const auto facets = boundary_facets(m);
  EXPECT_EQ(facets.size(), 6u * n * n);
}

TEST(BoundaryFacets, NormalsPointOutward) {
  const Mesh m = box_hex(2, 2, 2, {0, 0, 0}, {1, 1, 1});
  for (const Facet& f : boundary_facets(m)) {
    // Outward normal: facet centroid + normal moves away from the box
    // center.
    Vec3 fc{};
    for (idx v : f.vertices()) fc += m.coord(v);
    fc = fc / static_cast<real>(f.num_vertices());
    const Vec3 center{0.5, 0.5, 0.5};
    EXPECT_GT(dot(f.normal, fc - center), 0.0);
    EXPECT_NEAR(norm(f.normal), 1.0, 1e-12);
  }
}

TEST(BoundaryFacets, MaterialInterfaceEmitsBothSides) {
  // Two-cell bar with different materials: 2*5 exterior + 2 interface.
  std::vector<Vec3> coords;
  for (idx k = 0; k <= 1; ++k) {
    for (idx j = 0; j <= 1; ++j) {
      for (idx i = 0; i <= 2; ++i) {
        coords.push_back({static_cast<real>(i), static_cast<real>(j),
                          static_cast<real>(k)});
      }
    }
  }
  auto vid = [](idx i, idx j, idx k) { return (k * 2 + j) * 3 + i; };
  std::vector<idx> cells;
  for (idx i = 0; i < 2; ++i) {
    cells.insert(cells.end(),
                 {vid(i, 0, 0), vid(i + 1, 0, 0), vid(i + 1, 1, 0),
                  vid(i, 1, 0), vid(i, 0, 1), vid(i + 1, 0, 1),
                  vid(i + 1, 1, 1), vid(i, 1, 1)});
  }
  const Mesh m(CellKind::kHex8, coords, cells, {0, 1});
  const auto facets = boundary_facets(m);
  EXPECT_EQ(facets.size(), 12u);  // 10 exterior + 2 interface sides
  int interface_sides = 0;
  for (const Facet& f : facets) {
    Vec3 fc{};
    for (idx v : f.vertices()) fc += m.coord(v);
    fc = fc / 4.0;
    if (std::abs(fc.x - 1.0) < 1e-12) ++interface_sides;
  }
  EXPECT_EQ(interface_sides, 2);
}

TEST(FacetAdjacency, BoxFaceInterior) {
  const Mesh m = box_hex(3, 3, 3, {0, 0, 0}, {1, 1, 1});
  const auto facets = boundary_facets(m);
  const graph::Graph adj = facet_adjacency(facets);
  EXPECT_EQ(adj.num_vertices(), static_cast<idx>(facets.size()));
  // Facets in the middle of a box face touch 4 in-plane neighbors; facets
  // at a box edge also touch across the edge.
  for (idx f = 0; f < adj.num_vertices(); ++f) {
    EXPECT_GE(adj.degree(f), 4);
    EXPECT_LE(adj.degree(f), 6);
  }
}

TEST(ThinSlab, Dimensions) {
  const Mesh m = thin_slab();
  const Aabb box = m.bounding_box();
  EXPECT_NEAR(box.extent().z, 1.0, 1e-12);
  EXPECT_NEAR(box.extent().x, 16.0, 1e-12);
}

class SphereParams : public ::testing::TestWithParam<idx> {};

TEST_P(SphereParams, VolumeMatchesCubeOctant) {
  SphereInCubeParams p;
  p.num_shells = 5;
  p.base_core_layers = 2;
  p.base_outer_layers = 2;
  p.layers_per_shell = GetParam();
  const Mesh m = sphere_in_cube_octant(p);
  const real expected = p.cube_side * p.cube_side * p.cube_side;
  EXPECT_NEAR(m.volume(), expected, 1e-6 * expected);
}

TEST_P(SphereParams, NoInvertedCells) {
  SphereInCubeParams p;
  p.num_shells = 5;
  p.base_core_layers = 2;
  p.base_outer_layers = 2;
  p.layers_per_shell = GetParam();
  const Mesh m = sphere_in_cube_octant(p);
  for (idx e = 0; e < m.num_cells(); ++e) {
    EXPECT_GT(cell_volume(m, e), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Refinements, SphereParams, ::testing::Values(1, 2));

TEST(Sphere, ShellMaterialsAlternateAndLieInRadiusBands) {
  SphereInCubeParams p;  // 17 shells, defaults
  const Mesh m = sphere_in_cube_octant(p);
  idx hard_cells = 0;
  for (idx e = 0; e < m.num_cells(); ++e) {
    const real r = norm(m.centroid(e));
    if (m.material(e) == p.hard_material) {
      ++hard_cells;
      // Hard cells only inside the shell stack.
      EXPECT_GT(r, p.core_radius * 0.9);
      EXPECT_LT(r, p.shell_outer_radius * 1.1);
    }
  }
  // 9 of 17 shells are hard.
  EXPECT_GT(hard_cells, 0);
  const real frac = static_cast<real>(hard_cells) / m.num_cells();
  EXPECT_GT(frac, 0.1);
  EXPECT_LT(frac, 0.6);
}

TEST(Sphere, SymmetryPlanesAreExact) {
  SphereInCubeParams p;
  p.num_shells = 5;
  p.base_core_layers = 1;
  p.base_outer_layers = 1;
  const Mesh m = sphere_in_cube_octant(p);
  // Every vertex with a zero lattice coordinate maps to an exactly zero
  // physical coordinate (symmetry BC requires this).
  int on_plane = 0;
  for (idx v = 0; v < m.num_vertices(); ++v) {
    const Vec3& x = m.coord(v);
    if (x.x == 0 || x.y == 0 || x.z == 0) ++on_plane;
    EXPECT_GE(x.x, 0);
    EXPECT_GE(x.y, 0);
    EXPECT_GE(x.z, 0);
    EXPECT_LE(x.x, p.cube_side + 1e-12);
  }
  EXPECT_GT(on_plane, 0);
}

TEST(VerticesWhere, SelectsPredicateMatches) {
  const Mesh m = box_hex(2, 2, 2, {0, 0, 0}, {1, 1, 1});
  const auto bottom =
      m.vertices_where([](const Vec3& p) { return p.z < 1e-12; });
  EXPECT_EQ(bottom.size(), 9u);
}

TEST(Vtk, WritesReadableFile) {
  const Mesh m = box_hex(2, 2, 2, {0, 0, 0}, {1, 1, 1});
  // Pid suffix so concurrent test runs sharing TempDir don't clobber it.
  const std::string path = ::testing::TempDir() + "/prom_test." +
                           std::to_string(::getpid()) + ".vtk";
  std::vector<real> disp(static_cast<std::size_t>(m.num_vertices()) * 3, 0.5);
  VtkFields fields;
  fields.displacement = disp;
  ASSERT_TRUE(write_vtk(path, m, fields));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char header[64] = {0};
  ASSERT_NE(std::fgets(header, sizeof header, f), nullptr);
  EXPECT_NE(std::string(header).find("vtk"), std::string::npos);
  std::fclose(f);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace prom::mesh
