// Figure 12 reproduction: scaled efficiency of all major components of
// one linear solve (solve for x, matrix setup, fine grid creation, mesh
// setup, and total), normalized to the base case as
//   e = (base per-unknown wall time) / (case per-unknown wall time),
// which is the paper's 2/p * T(2)/T(p) * N(p)/N(2) normalization adapted
// to a fixed host (the per-rank model covers the communication part in
// Figure 11's bench).
#include <cstdio>
#include <cstdlib>

#include "app/driver.h"

using namespace prom;

namespace {

double per_unknown(double seconds, idx unknowns) {
  return seconds / static_cast<double>(unknowns);
}

}  // namespace

int main() {
  const bool full = std::getenv("PROM_BENCH_FULL") != nullptr;
  const auto series = app::scaled_series(full ? 4 : 3);

  std::vector<app::LinearStudyReport> reports;
  for (const app::ScaledCase& sc : series) {
    const app::ModelProblem problem =
        app::make_sphere_problem(sc.params, 1.2);
    app::LinearStudyConfig cfg;
    cfg.nranks = sc.ranks;
    cfg.rtol = 1e-4;
    reports.push_back(app::run_linear_study(problem, cfg));
  }
  const app::LinearStudyReport& base = reports.front();

  std::printf("Figure 12: per-component scaled efficiencies "
              "(1.0 = perfect; > 1.0 = super-linear)\n");
  std::printf("%-10s %-7s %-10s %-11s %-11s %-11s %-9s\n", "equations",
              "ranks", "solve x", "mat setup", "fine grid", "mesh setup",
              "total");
  for (const app::LinearStudyReport& r : reports) {
    auto eff = [&](double base_t, double t) {
      const double b = per_unknown(base_t, base.unknowns);
      const double c = per_unknown(t, r.unknowns);
      return c > 0 ? b / c : 0.0;
    };
    const double total_base = base.wall_partition + base.wall_fine_grid +
                              base.wall_mesh_setup + base.wall_matrix_setup +
                              base.wall_solve;
    const double total_r = r.wall_partition + r.wall_fine_grid +
                           r.wall_mesh_setup + r.wall_matrix_setup +
                           r.wall_solve;
    std::printf("%-10d %-7d %-10.2f %-11.2f %-11.2f %-11.2f %-9.2f\n",
                r.unknowns, r.ranks, eff(base.wall_solve, r.wall_solve),
                eff(base.wall_matrix_setup, r.wall_matrix_setup),
                eff(base.wall_fine_grid, r.wall_fine_grid),
                eff(base.wall_mesh_setup, r.wall_mesh_setup),
                eff(total_base, total_r));
  }
  std::printf(
      "\nshape claims vs the paper's Figure 12: every component's "
      "efficiency\nstays within a band around 1.0 as the problem scales "
      "(all phases scale);\nthe solve's efficiency benefits from the "
      "super-linear iteration/flop terms.\n");
  return 0;
}
