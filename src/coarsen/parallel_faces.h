// Parallel face identification (§4.5): each rank runs the Figure 3
// algorithm on the facets it owns, seeded by facets received from
// higher-numbered neighbor ranks; face-id collisions are recorded as edges
// of a face-id graph Gfid, which is globally reduced at the end and each
// facet takes the largest face id reachable from its own. As the paper
// notes, this does not reproduce the serial algorithm's faces exactly, but
// the resulting partitions are equivalent for the solver's purposes.
#pragma once

#include <span>
#include <vector>

#include "coarsen/faces.h"
#include "parx/runtime.h"

namespace prom::coarsen {

/// Runs inside a parx SPMD region with the replicated global facet data
/// and an owner rank per facet. Every rank returns the identical result
/// (face ids renumbered contiguously from 0).
FaceIdResult parallel_identify_faces(parx::Comm& comm,
                                     std::span<const mesh::Facet> facets,
                                     const graph::Graph& facet_adj,
                                     std::span<const idx> facet_owner,
                                     const FaceIdOptions& opts = {});

}  // namespace prom::coarsen
