// Small dense matrices and an LDL^T factorization. Used for: the redundant
// direct solve on the coarsest multigrid level, the diagonal blocks of the
// block-Jacobi smoother, and element-level computations in `fem`.
#pragma once

#include <span>
#include <vector>

#include "common/config.h"
#include "common/error.h"

namespace prom::la {

/// Column-major dense matrix.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(idx rows, idx cols)
      : rows_(rows), cols_(cols),
        a_(static_cast<std::size_t>(rows) * cols, real{0}) {}

  idx rows() const { return rows_; }
  idx cols() const { return cols_; }

  real& operator()(idx i, idx j) {
    return a_[static_cast<std::size_t>(j) * rows_ + i];
  }
  real operator()(idx i, idx j) const {
    return a_[static_cast<std::size_t>(j) * rows_ + i];
  }

  std::span<const real> data() const { return a_; }
  std::span<real> data() { return a_; }

  /// y = A x
  void matvec(std::span<const real> x, std::span<real> y) const;

  /// Identity matrix of order n.
  static DenseMatrix identity(idx n);

 private:
  idx rows_ = 0, cols_ = 0;
  std::vector<real> a_;
};

/// LDL^T factorization (no pivoting) of a symmetric matrix; intended for
/// the symmetric positive definite systems this project produces. A
/// non-positive or vanishing pivot marks the factorization as failed
/// rather than producing NaNs.
class DenseLdlt {
 public:
  /// Factors A (reads the lower triangle). O(n^3/3).
  explicit DenseLdlt(const DenseMatrix& a);

  bool ok() const { return ok_; }
  idx n() const { return n_; }

  /// Solves A x = b. Requires ok().
  void solve(std::span<const real> b, std::span<real> x) const;

 private:
  idx n_ = 0;
  bool ok_ = false;
  DenseMatrix l_;            // unit lower triangular (diagonal implied 1)
  std::vector<real> d_;      // diagonal of D
};

/// LU factorization with partial pivoting — the general-matrix counterpart
/// of DenseLdlt, used for the redundant coarsest-level solve of
/// non-symmetric operators (advection–diffusion Galerkin chains). A
/// vanishing pivot (singular to working precision) marks the
/// factorization as failed rather than producing NaNs.
class DenseLu {
 public:
  DenseLu() = default;
  /// Factors P A = L U. O(2n^3/3).
  explicit DenseLu(const DenseMatrix& a);

  bool ok() const { return ok_; }
  idx n() const { return n_; }

  /// Solves A x = b. Requires ok().
  void solve(std::span<const real> b, std::span<real> x) const;

 private:
  idx n_ = 0;
  bool ok_ = false;
  DenseMatrix lu_;          // packed L (unit diagonal implied) and U
  std::vector<idx> piv_;    // row of the k-th pivot
};

}  // namespace prom::la
