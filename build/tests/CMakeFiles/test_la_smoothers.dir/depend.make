# Empty dependencies file for test_la_smoothers.
# This may be replaced when dependencies are built.
