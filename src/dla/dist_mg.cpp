#include "dla/dist_mg.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"
#include "common/flops.h"
#include "dla/dist_setup.h"
#include "dla/dist_vec.h"
#include "dla/parx_backend.h"
#include "la/krylov_any.h"
#include "la/smoother_kernels.h"
#include "la/smoothers.h"
#include "la/vec.h"
#include "mg/cycle_any.h"
#include "obs/trace.h"
#include "partition/greedy.h"

namespace prom::dla {
namespace {

graph::Graph graph_of_pattern(const la::Csr& a) {
  std::vector<std::pair<idx, idx>> edges;
  for (idx i = 0; i < a.nrows; ++i) {
    for (nnz_t k = a.rowptr[i]; k < a.rowptr[i + 1]; ++k) {
      if (a.colidx[k] > i && a.colidx[k] < a.nrows) {
        edges.emplace_back(i, a.colidx[k]);
      }
    }
  }
  return graph::Graph::from_edges(a.nrows, edges);
}

/// Redundant dense factorization of the (gathered, constant-size) coarsest
/// operator, with the same diagonal-shift escalation as the serial build.
std::unique_ptr<la::DenseLdlt> factor_coarse(const la::Csr& a) {
  la::DenseMatrix dense(a.nrows, a.ncols);
  for (idx i = 0; i < a.nrows; ++i) {
    for (nnz_t k = a.rowptr[i]; k < a.rowptr[i + 1]; ++k) {
      dense(i, a.colidx[k]) = a.vals[k];
    }
  }
  auto direct = std::make_unique<la::DenseLdlt>(dense);
  if (!direct->ok()) {
    real max_diag = 1;
    for (idx i = 0; i < a.nrows; ++i) {
      max_diag = std::max(max_diag, std::abs(dense(i, i)));
    }
    for (real shift = 1e-12 * max_diag; !direct->ok(); shift *= 10) {
      la::DenseMatrix shifted = dense;
      for (idx i = 0; i < a.nrows; ++i) shifted(i, i) += shift;
      *direct = la::DenseLdlt(shifted);
      PROM_CHECK(shift < 1e30);
    }
  }
  return direct;
}

/// LU counterpart of factor_coarse for non-symmetric coarsest operators:
/// partial pivoting needs no shift escalation.
std::unique_ptr<la::DenseLu> factor_coarse_lu(const la::Csr& a) {
  la::DenseMatrix dense(a.nrows, a.ncols);
  for (idx i = 0; i < a.nrows; ++i) {
    for (nnz_t k = a.rowptr[i]; k < a.rowptr[i + 1]; ++k) {
      dense(i, a.colidx[k]) = a.vals[k];
    }
  }
  auto direct = std::make_unique<la::DenseLu>(dense);
  PROM_CHECK_MSG(direct->ok(),
                 "coarsest-level LU factorization failed (singular)");
  return direct;
}

/// The active-subset communicator of an agglomerated level: ranks
/// [0, active). Pure-local construction (Comm::split), so building it per
/// coarse solve costs one small allocation and no traffic.
parx::Comm active_subcomm(parx::Comm& comm, int active) {
  std::vector<int> members(static_cast<std::size_t>(active));
  std::iota(members.begin(), members.end(), 0);
  return comm.split(members);
}

/// The first `active` ranks' slice of an agglomerated RowDist (trailing
/// ranks own empty ranges, so truncating the offsets is exact).
RowDist active_rowdist(const RowDist& dist, int active) {
  PROM_CHECK(dist.offsets[static_cast<std::size_t>(active)] ==
             dist.global_size());
  return RowDist{std::vector<idx>(
      dist.offsets.begin(), dist.offsets.begin() + active + 1)};
}

/// Even row split of an agglomerated level over its first `active` ranks,
/// with every split point snapped *up* to the next node boundary so node
/// blocks (DistBsr, block size `bs`) never straddle ranks. Trailing ranks
/// own empty ranges. The node id of new row i is free_dofs[perm[i]] / bs,
/// exactly the grouping DistBsr::build uses; at bs = 1 every row is its
/// own node and the split is exactly even.
RowDist agglom_rowdist(const std::vector<idx>& free_dofs,
                       const std::vector<idx>& perm, int active, int nranks,
                       int bs) {
  const idx n = static_cast<idx>(perm.size());
  const auto node_of = [&](idx i) { return free_dofs[perm[i]] / bs; };
  std::vector<idx> off(static_cast<std::size_t>(nranks) + 1, n);
  off[0] = 0;
  for (int r = 1; r < active; ++r) {
    idx cut = std::max<idx>(
        off[r - 1],
        static_cast<idx>(static_cast<std::int64_t>(n) * r / active));
    while (cut > 0 && cut < n && node_of(cut) == node_of(cut - 1)) ++cut;
    off[static_cast<std::size_t>(r)] = cut;
  }
  return RowDist{std::move(off)};
}

/// Adapts the distributed hierarchy to the generic cycle templates
/// (mg/cycle_any.h): the one V-cycle / FMG implementation runs on local
/// blocks, and only these level operations communicate.
struct DistCycleView {
  parx::Comm* comm;
  const DistHierarchy* h;

  int num_levels() const { return h->num_levels(); }
  idx local_n(int l) const { return h->level(l).local_n(); }
  int pre_smooth() const { return h->pre_smooth; }
  int post_smooth() const { return h->post_smooth; }
  /// Agglomeration hook for the cycle templates: ranks outside level l's
  /// active set skip the cycle body at and below l (they hold no rows
  /// and no plan roles there; their part is the caller's boundary
  /// restriction/prolongation exchange).
  bool level_inactive(int l) const {
    return comm->rank() >= h->active_ranks(l);
  }
  void smooth(int l, std::span<const real> b, std::span<real> x) const {
    h->level(l).smooth(*comm, b, x);
  }
  void apply_a(int l, std::span<const real> x, std::span<real> y) const {
    const DistMgLevel& lv = h->level(l);
    if (lv.a_mf != nullptr) {
      lv.a_mf->spmv(*comm, x, y);
    } else if (lv.a_bsr != nullptr) {
      lv.a_bsr->spmv(*comm, x, y);
    } else {
      lv.a.spmv(*comm, x, y);
    }
  }
  void restrict_to(int l, std::span<const real> xf, std::span<real> xc) const {
    h->level(l).r.spmv(*comm, xf, xc);
  }
  void prolong(int l, std::span<const real> xc, std::span<real> xf) const {
    h->level(l).r.spmv_transpose(*comm, xc, xf);
  }
  void coarse_solve(std::span<const real> b, std::span<real> x) const {
    const int nl = h->num_levels();
    const DistMgLevel& lv = h->level(nl - 1);
    if (lv.direct != nullptr || lv.direct_lu != nullptr) {
      // Redundant coarse solve: gather, factor-solve locally, keep my
      // slice (§5 — the coarsest problem is constant-size). When the
      // coarsest level is agglomerated, only its active ranks reach this
      // point (the cycle skips idle ranks), so the gather collective must
      // run over the active subset alone.
      const int active = h->active_ranks(nl - 1);
      std::vector<real> b_full;
      if (active < comm->size()) {
        parx::Comm sub = active_subcomm(*comm, active);
        b_full =
            dist_gather_all(sub, active_rowdist(lv.a.row_dist(), active), b);
      } else {
        b_full = dist_gather_all(*comm, lv.a.row_dist(), b);
      }
      std::vector<real> x_full(b_full.size());
      if (lv.direct != nullptr) {
        lv.direct->solve(b_full, x_full);
      } else {
        lv.direct_lu->solve(b_full, x_full);
      }
      const idx b0 = lv.a.row_dist().begin(comm->rank());
      for (idx i = 0; i < lv.local_n(); ++i) x[i] = x_full[b0 + i];
    } else {
      // Single-level hierarchy: a few smoothing steps stand in.
      for (int s = 0; s < 4; ++s) lv.smooth(*comm, b, x);
    }
  }

  // Column-blocked level operations (MultiCycleView); column j bitwise
  // equals the scalar operation on that column.
  void smooth_mv(int l, const la::MultiVec& b, la::MultiVec& x) const {
    h->level(l).smooth_mv(*comm, b, x);
  }
  void apply_a_mv(int l, const la::MultiVec& x, la::MultiVec& y) const {
    const DistMgLevel& lv = h->level(l);
    if (lv.a_mf != nullptr) {
      lv.a_mf->spmm(*comm, x, y);
    } else if (lv.a_bsr != nullptr) {
      lv.a_bsr->spmm(*comm, x, y);
    } else {
      lv.a.spmm(*comm, x, y);
    }
  }
  void restrict_to_mv(int l, const la::MultiVec& xf, la::MultiVec& xc) const {
    h->level(l).r.spmm(*comm, xf, xc);
  }
  void prolong_mv(int l, const la::MultiVec& xc, la::MultiVec& xf) const {
    h->level(l).r.spmm_transpose(*comm, xc, xf);
  }
  void coarse_solve_mv(const la::MultiVec& b, la::MultiVec& x) const {
    const int nl = h->num_levels();
    const DistMgLevel& lv = h->level(nl - 1);
    if (lv.direct != nullptr || lv.direct_lu != nullptr) {
      // One allgatherv carries every column; the factor-solve is already
      // local and runs per column in order. Same active-subset rule as
      // the scalar path.
      const int active = h->active_ranks(nl - 1);
      la::MultiVec b_full;
      if (active < comm->size()) {
        parx::Comm sub = active_subcomm(*comm, active);
        b_full = dist_gather_all_mv(
            sub, active_rowdist(lv.a.row_dist(), active), b);
      } else {
        b_full = dist_gather_all_mv(*comm, lv.a.row_dist(), b);
      }
      const idx b0 = lv.a.row_dist().begin(comm->rank());
      std::vector<real> x_full(static_cast<std::size_t>(b_full.rows()));
      for (int j = 0; j < b.cols(); ++j) {
        if (lv.direct != nullptr) {
          lv.direct->solve(b_full.col(j), x_full);
        } else {
          lv.direct_lu->solve(b_full.col(j), x_full);
        }
        real* xj = x.col_data(j);
        for (idx i = 0; i < lv.local_n(); ++i) xj[i] = x_full[b0 + i];
      }
    } else {
      for (int s = 0; s < 4; ++s) lv.smooth_mv(*comm, b, x);
    }
  }
};

}  // namespace

namespace {

/// Smoother dispatch over the operator view: the sweeps are generic in
/// the operator, so the CSR and node-block paths share one body.
template <class Op>
void smooth_with(const DistMgLevel& lv, parx::Comm& comm, const Op& op,
                 std::span<const real> b_local, std::span<real> x_local) {
  const ParxBackend be{&comm};
  switch (lv.kind) {
    case mg::SmootherKind::kJacobi:
      la::jacobi_sweep(be, op, lv.inv_diag, lv.omega, b_local, x_local);
      break;
    case mg::SmootherKind::kChebyshev:
      la::chebyshev_sweep(be, op, lv.inv_diag, lv.cheby_degree, lv.cheby_lmin,
                          lv.cheby_lmax, b_local, x_local);
      break;
    default:
      la::block_jacobi_sweep(be, op, lv.blocks, lv.factors, lv.omega, b_local,
                             x_local);
      break;
  }
}

/// Column-blocked smoother dispatch; same structure as smooth_with over
/// the mv sweeps.
template <class Op>
void smooth_with_mv(const DistMgLevel& lv, parx::Comm& comm, const Op& op,
                    const la::MultiVec& b_local, la::MultiVec& x_local) {
  const ParxBackend be{&comm};
  switch (lv.kind) {
    case mg::SmootherKind::kJacobi:
      la::jacobi_sweep_mv(be, op, lv.inv_diag, lv.omega, b_local, x_local);
      break;
    case mg::SmootherKind::kChebyshev:
      la::chebyshev_sweep_mv(be, op, lv.inv_diag, lv.cheby_degree,
                             lv.cheby_lmin, lv.cheby_lmax, b_local, x_local);
      break;
    default:
      la::block_jacobi_sweep_mv(be, op, lv.blocks, lv.factors, lv.omega,
                                b_local, x_local);
      break;
  }
}

}  // namespace

void DistMgLevel::smooth(parx::Comm& comm, std::span<const real> b_local,
                         std::span<real> x_local) const {
  if (smooth_masked) {
    // Local smoothing (adaptive refinement levels): the full collective
    // sweep runs on a scratch copy — same exchanges on every rank, since
    // the masked flag is a level property, not a rank property — and only
    // the refined-region rows this rank owns take the update.
    std::vector<real> tmp(x_local.begin(), x_local.end());
    smooth_full(comm, b_local, tmp);
    for (idx i : smooth_rows_local) x_local[i] = tmp[i];
    return;
  }
  smooth_full(comm, b_local, x_local);
}

void DistMgLevel::smooth_full(parx::Comm& comm, std::span<const real> b_local,
                              std::span<real> x_local) const {
  if (a_bsr != nullptr) {
    smooth_with(*this, comm, DistBsrOperator(*a_bsr), b_local, x_local);
  } else {
    smooth_with(*this, comm, DistCsrOperator(a), b_local, x_local);
  }
}

void DistMgLevel::smooth_mv(parx::Comm& comm, const la::MultiVec& b_local,
                            la::MultiVec& x_local) const {
  if (smooth_masked) {
    la::MultiVec tmp = x_local;
    smooth_full_mv(comm, b_local, tmp);
    for (int j = 0; j < x_local.cols(); ++j) {
      real* xj = x_local.col_data(j);
      const real* tj = tmp.col_data(j);
      for (idx i : smooth_rows_local) xj[i] = tj[i];
    }
    return;
  }
  smooth_full_mv(comm, b_local, x_local);
}

void DistMgLevel::smooth_full_mv(parx::Comm& comm, const la::MultiVec& b_local,
                                 la::MultiVec& x_local) const {
  if (a_bsr != nullptr) {
    smooth_with_mv(*this, comm, DistBsrOperator(*a_bsr), b_local, x_local);
  } else {
    smooth_with_mv(*this, comm, DistCsrOperator(a), b_local, x_local);
  }
}

std::vector<int> agglom_active_ranks(std::span<const idx> level_rows,
                                     int nranks, idx min_rows_per_rank) {
  std::vector<int> active(level_rows.size(), nranks);
  if (min_rows_per_rank <= 0) return active;
  for (std::size_t l = 1; l < level_rows.size(); ++l) {
    int a = active[l - 1];
    while (a > 1 && static_cast<std::int64_t>(level_rows[l]) <
                        static_cast<std::int64_t>(min_rows_per_rank) * a) {
      a = (a + 1) / 2;
    }
    active[l] = a;
  }
  return active;
}

DistHierarchy DistHierarchy::build(parx::Comm& comm,
                                   const mg::Hierarchy& serial,
                                   std::span<const idx> fine_vertex_owner,
                                   mg::MatrixFormat format,
                                   const MfProblem* mf) {
  PROM_CHECK_MSG(format != mg::MatrixFormat::kMf || mf != nullptr,
                 "MatrixFormat::kMf requires an MfProblem");
  const int bs = serial.block_size();
  PROM_CHECK_MSG(bs == 3 || format == mg::MatrixFormat::kCsr,
                 "node-block and matrix-free formats require block size 3");
  const int nl = serial.num_levels();
  const int p = comm.size();
  const int rank = comm.rank();
  const mg::MgOptions& mo = serial.options();
  DistHierarchy h;
  h.pre_smooth = mo.pre_smooth;
  h.post_smooth = mo.post_smooth;
  h.levels_.resize(static_cast<std::size_t>(nl));
  h.perms_.resize(static_cast<std::size_t>(nl));

  // Propagate dof ownership down the hierarchy via the MIS parent chain.
  // vertex_owner[l][v] = rank of vertex v at level l.
  std::vector<std::vector<idx>> vertex_owner(static_cast<std::size_t>(nl));
  vertex_owner[0].assign(fine_vertex_owner.begin(), fine_vertex_owner.end());
  for (int l = 1; l < nl; ++l) {
    const auto& sel = serial.level(l).selected_from_fine;
    vertex_owner[l].resize(sel.size());
    for (std::size_t c = 0; c < sel.size(); ++c) {
      vertex_owner[l][c] = vertex_owner[l - 1][sel[c]];
    }
  }

  std::vector<RowDist> dists(static_cast<std::size_t>(nl));
  for (int l = 0; l < nl; ++l) {
    const mg::MgLevel& lv = serial.level(l);
    const idx n = static_cast<idx>(lv.free_dofs.size());
    // Owner of free dof i = owner of its vertex; stable-sort dofs by owner.
    std::vector<idx> owner(static_cast<std::size_t>(n));
    for (idx i = 0; i < n; ++i) {
      owner[i] = vertex_owner[l][lv.free_dofs[i] / bs];
    }
    std::vector<idx>& perm = h.perms_[l];
    perm.resize(static_cast<std::size_t>(n));
    std::iota(perm.begin(), perm.end(), idx{0});
    std::stable_sort(perm.begin(), perm.end(),
                     [&](idx x, idx y) { return owner[x] < owner[y]; });
    std::vector<idx> sorted_owner(static_cast<std::size_t>(n));
    for (idx i = 0; i < n; ++i) sorted_owner[i] = owner[perm[i]];
    dists[l] = RowDist::from_sorted_owners(sorted_owner, p);
  }

  // Coarse-level agglomeration (MgOptions::agglom_min_rows): evaluate the
  // active-rank policy against the natural (vertex-ownership) level sizes,
  // then give every agglomerated level a final distribution that packs its
  // rows onto ranks [0, active) in even node-aligned slices. The natural
  // distributions stay in `dists` — the Galerkin chain runs on them so the
  // coarse operators (and galerkin_flops) are independent of the policy.
  std::vector<idx> level_rows(static_cast<std::size_t>(nl));
  for (int l = 0; l < nl; ++l) level_rows[l] = dists[l].global_size();
  h.active_ = agglom_active_ranks(level_rows, p, mo.agglom_min_rows);
  std::vector<RowDist> final_dists = dists;
  for (int l = 1; l < nl; ++l) {
    if (h.active_[l] < p) {
      final_dists[l] = agglom_rowdist(serial.level(l).free_dofs, h.perms_[l],
                                      h.active_[l], p, bs);
    }
  }

  // Operators: the fine matrix and the restrictions are sliced from the
  // serial inputs (each rank extracts its rows only); every coarse
  // operator is the distributed Galerkin product of the previous one —
  // always on the natural distributions. An agglomerated level then ships
  // its operator to the active subset (dist_redistribute) and rebuilds its
  // restriction on the final layouts from the replicated serial R; the
  // natural operator is kept aside as the next Galerkin input.
  DistCsr nat_hold;
  const DistCsr* nat_prev = nullptr;
  for (int l = 0; l < nl; ++l) {
    const obs::Span span("setup.level", l);
    DistMgLevel& dl = h.levels_[l];
    if (l == 0) {
      dl.a = DistCsr::from_global_permuted(comm, serial.level(0).a, dists[0],
                                           dists[0], h.perms_[0],
                                           h.perms_[0]);
      nat_prev = &dl.a;
    } else {
      DistCsr r_nat = DistCsr::from_global_permuted(
          comm, serial.level(l).r, dists[l], dists[l - 1], h.perms_[l],
          h.perms_[l - 1]);
      const FlopWindow window;
      DistCsr a_nat = dist_galerkin_product(comm, r_nat, *nat_prev,
                                            h.perms_[l - 1]);
      h.galerkin_flops_ += window.flops();
      if (h.active_[l] < p) {
        {
          const obs::Span rspan("agglom.redistribute", l);
          dl.a = dist_redistribute(comm, a_nat, final_dists[l],
                                   final_dists[l]);
        }
        dl.r = DistCsr::from_global_permuted(
            comm, serial.level(l).r, final_dists[l], final_dists[l - 1],
            h.perms_[l], h.perms_[l - 1]);
        nat_hold = std::move(a_nat);
        nat_prev = &nat_hold;
      } else {
        dl.a = std::move(a_nat);
        dl.r = std::move(r_nat);
        nat_prev = &dl.a;
      }
    }
    if (format == mg::MatrixFormat::kBsr3) {
      // Node-block view for the solve phase; the setup above stays CSR so
      // both formats see bit-identical operators.
      dl.a_bsr = std::make_unique<DistBsr>(DistBsr::build(
          comm, dl.a, h.perms_[l], serial.level(l).free_dofs));
    }
    if (format == mg::MatrixFormat::kMf && l == 0) {
      // Matrix-free fine-level view over dl.a's layout and exchange plan;
      // coarse levels stay assembled (Galerkin products need entries).
      dl.a_mf = std::make_unique<DistMf>(
          DistMf::build(comm, *mf, dl.a, h.perms_[0]));
    }
    // Level-resolved size metrics: the gauge is identical on every rank
    // (last-write merge keeps one copy); local nnz counters sum-merge
    // across ranks into the global operator nnz.
    obs::gauge_set("mg.rows", static_cast<double>(dists[l].global_size()), l);
    obs::gauge_set("mg.active_ranks", static_cast<double>(h.active_[l]), l);
    obs::counter_add("mg.nnz",
                     static_cast<double>(dl.a.local_matrix().vals.size()), l);
  }

  // Smoothers / coarse factorization.
  for (int l = 0; l < nl; ++l) {
    DistMgLevel& dl = h.levels_[l];
    const bool coarsest = l + 1 == nl;
    if (coarsest && nl > 1) {
      // The coarsest operator has constant size (§5): gather it and
      // factor redundantly on every rank — LU when the serial options ask
      // for the non-symmetric coarse solve, LDL^T otherwise.
      if (mo.coarse_solver == mg::CoarseSolverKind::kDenseLu) {
        dl.direct_lu = factor_coarse_lu(dist_gather_matrix(comm, dl.a));
      } else {
        dl.direct = factor_coarse(dist_gather_matrix(comm, dl.a));
      }
      continue;
    }
    dl.kind = mo.smoother == mg::SmootherKind::kSymGaussSeidel
                  ? mg::SmootherKind::kBlockJacobi
                  : mo.smoother;
    dl.omega = mo.omega;
    dl.local_diag = dl.a.local_diagonal_block();
    // Local-smoothing mask (adaptive refinement levels): this rank's
    // slice of the serial MgLevel::smooth_rows, in local row numbering.
    // The masked flag is a property of the serial level, so it is
    // identical on every rank and the collective sweep schedule agrees.
    const mg::MgLevel& sl = serial.level(l);
    if (!sl.smooth_rows.empty()) {
      dl.smooth_masked = true;
      std::vector<char> in_mask(sl.free_dofs.size(), 0);
      for (idx i : sl.smooth_rows) in_mask[i] = 1;
      const RowDist& rd = dl.a.row_dist();
      const idx b0 = rd.begin(rank);
      const idx nloc = rd.local_size(rank);
      for (idx i = 0; i < nloc; ++i) {
        if (in_mask[h.perms_[l][b0 + i]]) dl.smooth_rows_local.push_back(i);
      }
    }
    switch (dl.kind) {
      case mg::SmootherKind::kJacobi:
        dl.inv_diag = la::inverted_diagonal(dl.local_diag);
        break;
      case mg::SmootherKind::kChebyshev: {
        dl.inv_diag = la::inverted_diagonal(dl.local_diag);
        dl.cheby_degree = std::max(1, mo.cheby_degree);
        const real lambda = la::estimate_lambda_max(
            ParxBackend{&comm}, DistCsrOperator(dl.a), dl.inv_diag,
            dl.a.row_dist().begin(rank));
        dl.cheby_lmax = 1.1 * std::max(lambda, real{1e-12});
        dl.cheby_lmin = dl.cheby_lmax / 30;
        break;
      }
      default:
        dl.blocks = partition::block_jacobi_blocks(
            graph_of_pattern(dl.local_diag), mo.bj_blocks_per_1000);
        dl.factors = la::factor_diagonal_blocks(dl.local_diag, dl.blocks);
        break;
    }
  }
  return h;
}

void dist_vcycle(parx::Comm& comm, const DistHierarchy& h, int level,
                 std::span<const real> b_local, std::span<real> x_local) {
  mg::vcycle_any(DistCycleView{&comm, &h}, level, b_local, x_local);
}

std::vector<real> dist_fmg_cycle(parx::Comm& comm, const DistHierarchy& h,
                                 std::span<const real> b_local) {
  return mg::fmg_any(DistCycleView{&comm, &h}, b_local);
}

void DistMgPreconditioner::apply(parx::Comm& comm,
                                 std::span<const real> x_local,
                                 std::span<real> y_local) const {
  mg::apply_cycle(DistCycleView{&comm, h_}, kind_, x_local, y_local);
}

void DistMgPreconditioner::apply_mv(parx::Comm& comm,
                                    const la::MultiVec& x_local,
                                    la::MultiVec& y_local) const {
  mg::apply_cycle_mv(DistCycleView{&comm, h_}, kind_, x_local, y_local);
}

la::KrylovResult dist_mg_pcg_solve(parx::Comm& comm, const DistHierarchy& h,
                                   std::span<const real> b_local,
                                   std::span<real> x_local,
                                   const mg::MgSolveOptions& opts) {
  const DistMgPreconditioner precond(h, opts.cycle);
  if (opts.format == mg::MatrixFormat::kBsr3) {
    PROM_CHECK_MSG(h.level(0).a_bsr != nullptr,
                   "MatrixFormat::kBsr3 requires a hierarchy built with it");
    const DistBsrOperator a(*h.level(0).a_bsr);
    return dist_pcg(comm, a, &precond, b_local, x_local,
                    mg::to_krylov_options(opts));
  }
  if (opts.format == mg::MatrixFormat::kMf) {
    PROM_CHECK_MSG(h.level(0).a_mf != nullptr,
                   "MatrixFormat::kMf requires a hierarchy built with it");
    const DistMfOperator a(*h.level(0).a_mf);
    return dist_pcg(comm, a, &precond, b_local, x_local,
                    mg::to_krylov_options(opts));
  }
  const DistCsrOperator a(h.level(0).a);
  return dist_pcg(comm, a, &precond, b_local, x_local,
                  mg::to_krylov_options(opts));
}

std::vector<la::KrylovResult> dist_mg_pcg_solve_mv(
    parx::Comm& comm, const DistHierarchy& h, const la::MultiVec& b_local,
    la::MultiVec& x_local, const mg::MgSolveOptions& opts,
    la::KrylovWorkspace* ws) {
  const DistMgPreconditioner precond(h, opts.cycle);
  if (opts.format == mg::MatrixFormat::kBsr3) {
    PROM_CHECK_MSG(h.level(0).a_bsr != nullptr,
                   "MatrixFormat::kBsr3 requires a hierarchy built with it");
    const DistBsrOperator a(*h.level(0).a_bsr);
    return dist_pcg_multi(comm, a, &precond, b_local, x_local,
                          mg::to_krylov_options(opts), ws);
  }
  if (opts.format == mg::MatrixFormat::kMf) {
    PROM_CHECK_MSG(h.level(0).a_mf != nullptr,
                   "MatrixFormat::kMf requires a hierarchy built with it");
    const DistMfOperator a(*h.level(0).a_mf);
    return dist_pcg_multi(comm, a, &precond, b_local, x_local,
                          mg::to_krylov_options(opts), ws);
  }
  const DistCsrOperator a(h.level(0).a);
  return dist_pcg_multi(comm, a, &precond, b_local, x_local,
                        mg::to_krylov_options(opts), ws);
}

namespace {

la::KrylovResult run_nonsym(parx::Comm& comm, const DistOperator& a,
                            const DistOperator& precond,
                            std::span<const real> b_local,
                            std::span<real> x_local,
                            const mg::MgSolveOptions& opts) {
  if (opts.krylov == la::KrylovKind::kGmres) {
    return dist_gmres(comm, a, &precond, b_local, x_local,
                      mg::to_gmres_options(opts));
  }
  return dist_bicgstab(comm, a, &precond, b_local, x_local,
                       mg::to_krylov_options(opts));
}

}  // namespace

la::KrylovResult dist_mg_krylov_solve(parx::Comm& comm,
                                      const DistHierarchy& h,
                                      std::span<const real> b_local,
                                      std::span<real> x_local,
                                      const mg::MgSolveOptions& opts) {
  if (opts.krylov == la::KrylovKind::kPcg) {
    return dist_mg_pcg_solve(comm, h, b_local, x_local, opts);
  }
  const DistMgPreconditioner precond(h, opts.cycle);
  if (opts.format == mg::MatrixFormat::kBsr3) {
    PROM_CHECK_MSG(h.level(0).a_bsr != nullptr,
                   "MatrixFormat::kBsr3 requires a hierarchy built with it");
    const DistBsrOperator a(*h.level(0).a_bsr);
    return run_nonsym(comm, a, precond, b_local, x_local, opts);
  }
  if (opts.format == mg::MatrixFormat::kMf) {
    PROM_CHECK_MSG(h.level(0).a_mf != nullptr,
                   "MatrixFormat::kMf requires a hierarchy built with it");
    const DistMfOperator a(*h.level(0).a_mf);
    return run_nonsym(comm, a, precond, b_local, x_local, opts);
  }
  const DistCsrOperator a(h.level(0).a);
  return run_nonsym(comm, a, precond, b_local, x_local, opts);
}

}  // namespace prom::dla
