file(REMOVE_RECURSE
  "libprom_graph.a"
)
