// Block-sparse-row matrices with dense BS x BS blocks — the PETSc BAIJ
// substitute. 3D elasticity carries 3 dofs per mesh node, so stiffness
// matrices are naturally sparse matrices of dense 3x3 node blocks; storing
// them blocked cuts the column-index traffic of memory-bound kernels by
// BS^2 and is what made the paper's per-node Mflop/s rates attainable
// (Adams & Demmel ran Prometheus on PETSc block matrices throughout).
//
// Every kernel follows the intra-rank determinism contract of
// common/parallel.h: fixed grains, per-chunk private accumulators, merges
// in chunk order. SpMV additionally preserves the scalar accumulation
// order of la::Csr — within each scalar row, terms are added in ascending
// scalar-column order (blocks are sorted by block column; the BS lanes of
// a block are visited in order) — so a Bsr built from a Csr produces
// bit-identical products, and the CSR and BSR solve paths yield the same
// residual histories.
#pragma once

#include <array>
#include <memory>
#include <span>
#include <vector>

#include "common/config.h"
#include "la/csr.h"
#include "la/operator.h"

namespace prom::la {

/// One (block row, block col, dense block) assembly contribution. The
/// block is row-major: v[r * BS + c] is the (r, c) entry.
template <int BS>
struct BlockTriplet {
  idx brow;
  idx bcol;
  std::array<real, BS * BS> v;
};

/// BSR sparse matrix of dense BS x BS blocks. Block-column indices are
/// sorted and unique within each block row; `vals` stores each block
/// row-major, BS*BS reals per block.
template <int BS>
struct Bsr {
  static_assert(BS >= 1);
  static constexpr int kBlock = BS;
  static constexpr int kBlockSize = BS * BS;

  idx nbrows = 0;  // block rows
  idx nbcols = 0;  // block cols
  std::vector<nnz_t> browptr;  // size nbrows + 1
  std::vector<idx> bcolidx;    // size nblocks
  std::vector<real> vals;      // size nblocks * BS * BS

  nnz_t nblocks() const { return browptr.empty() ? 0 : browptr.back(); }
  idx rows() const { return BS * nbrows; }
  idx cols() const { return BS * nbcols; }

  /// y = A x (scalar vectors of length cols() / rows()).
  void spmv(std::span<const real> x, std::span<real> y) const;

  /// y += A x
  void spmv_add(std::span<const real> x, std::span<real> y) const;

  /// y = A^T x (no explicit transpose formed).
  void spmv_transpose(std::span<const real> x, std::span<real> y) const;

  /// r = b - A x, fused (same bits as spmv followed by r = b - y).
  void residual(std::span<const real> b, std::span<const real> x,
                std::span<real> r) const;

  /// y = A x restricted to the listed block rows; other entries of y are
  /// not touched. Each block row accumulates exactly as in spmv, so
  /// splitting the block-row space across calls reproduces spmv's bits.
  void spmv_brows(std::span<const real> x, std::span<real> y,
                  std::span<const idx> brows) const;

  /// r = b - A x restricted to the listed block rows.
  void residual_brows(std::span<const real> b, std::span<const real> x,
                      std::span<real> r, std::span<const idx> brows) const;

  /// Y = A X, column-blocked: one pass over the block structure feeds one
  /// accumulator per column, each in spmv's order (column j bitwise equals
  /// spmv on X.col(j)).
  void spmm(const MultiVec& x, MultiVec& y) const;

  /// R = B - A X, fused column-blocked residual.
  void residual_mv(const MultiVec& b, const MultiVec& x, MultiVec& r) const;

  /// Column-blocked spmv_brows (listed block rows only).
  void spmm_brows(const MultiVec& x, MultiVec& y,
                  std::span<const idx> brows) const;

  /// Column-blocked residual_brows.
  void residual_mv_brows(const MultiVec& b, const MultiVec& x, MultiVec& r,
                         std::span<const idx> brows) const;

  /// Convenience: returns A x as a new vector.
  std::vector<real> apply(std::span<const real> x) const;

  /// Scalar value at (i, j); 0 if no covering block is stored.
  real at(idx i, idx j) const;

  /// Explicit transpose (blocks transposed too).
  Bsr transposed() const;

  /// Scalar main diagonal (missing entries give 0).
  std::vector<real> diagonal() const;

  /// Dense diagonal blocks, BS*BS reals per block row (row-major); block
  /// rows with no stored diagonal block give zeros.
  std::vector<real> block_diagonal() const;

  /// Inverse of each diagonal block, BS*BS reals per block row. Missing
  /// diagonal blocks yield the identity. Fails on singular blocks.
  std::vector<real> inverted_block_diagonal() const;

  /// Lossless scalar view: every stored block expands to BS*BS CSR
  /// entries (explicit zeros included), columns sorted.
  Csr to_csr() const;

  /// Blocks a CSR matrix whose dimensions are divisible by BS. Lossless:
  /// unstored scalar entries become explicit zeros inside their block.
  static Bsr from_csr(const Csr& a);

  /// Builds from block triplets; duplicate (brow, bcol) blocks are summed
  /// entrywise (the finite element assembly convention).
  static Bsr from_block_triplets(idx nbrows, idx nbcols,
                                 std::span<const BlockTriplet<BS>> triplets);
};

/// C = A * B with block-level Gustavson (dense BS x BS block products).
template <int BS>
Bsr<BS> spgemm(const Bsr<BS>& a, const Bsr<BS>& b);

/// The blocked Galerkin triple product R A R^T. R is (coarse block rows) x
/// (fine block cols), A is square on the fine block space.
template <int BS>
Bsr<BS> galerkin_product(const Bsr<BS>& r, const Bsr<BS>& a);

using Bsr3 = Bsr<3>;
using BlockTriplet3 = BlockTriplet<3>;

extern template struct Bsr<3>;

/// Maps a free-dof vector (the solver's numbering, one entry per
/// unconstrained dof) onto a padded node-block space: every mesh node with
/// at least one free dof becomes one block of kDofPerVertex slots, and a
/// node's constrained components become padding slots that hold zeros.
/// Built from the level's `free_dofs` list (entries are
/// kDofPerVertex * vertex + component, ascending).
struct NodeBlockMap {
  idx nfree = 0;   // free dofs (scalar solver vectors)
  idx nnodes = 0;  // node blocks (>= 1 free dof each)
  std::vector<idx> slot_of_free;   // free dof -> kDofPerVertex*node + comp
  std::vector<idx> free_of_slot;   // slot -> free dof, kInvalidIdx = padding
  std::vector<idx> vertex_of_node; // node -> mesh vertex (ascending)

  idx nslots() const { return kDofPerVertex * nnodes; }

  /// Scatters a free vector into the padded block space (padding = 0).
  void gather(std::span<const real> free_vec, std::span<real> slots) const;
  /// Extracts the free entries of a padded block vector.
  void scatter(std::span<const real> slots, std::span<real> free_vec) const;
};

/// Builds the map from a level's free-dof list (3*v + c, ascending).
NodeBlockMap node_block_map(std::span<const idx> free_dofs);

/// Re-blocks a free-dof CSR operator (the assembled stiffness with
/// constrained dofs removed) into the padded node-block space of `map`.
/// Padding rows/cols are zero except for 1s on the padded diagonal slots,
/// which keep every diagonal block invertible for the point-block
/// smoothers without perturbing the free sub-operator.
Bsr3 bsr_from_free_csr(const Csr& a, const NodeBlockMap& map);

/// LinearOperator adapter: applies a padded node-block Bsr3 to free-dof
/// vectors by gathering through a NodeBlockMap, running the blocked SpMV,
/// and scattering the free rows back. Because padding contributes exact
/// zeros and block columns are sorted, the result is bit-identical to the
/// scalar CSR operator it was built from (modulo signed zeros).
class BsrOperator final : public LinearOperator {
 public:
  BsrOperator(Bsr3 a, NodeBlockMap map);

  idx rows() const override { return map_.nfree; }
  idx cols() const override { return map_.nfree; }
  void apply(std::span<const real> x, std::span<real> y) const override;
  void apply_mv(const MultiVec& x, MultiVec& y) const override;

  /// r = b - A x on free vectors (fused kernel, same bits as apply + sub).
  void residual(std::span<const real> b, std::span<const real> x,
                std::span<real> r) const;

  /// Column-blocked fused residual on free multi-vectors.
  void residual_mv(const MultiVec& b, const MultiVec& x, MultiVec& r) const;

  const Bsr3& matrix() const { return a_; }
  const NodeBlockMap& map() const { return map_; }

 private:
  Bsr3 a_;
  NodeBlockMap map_;
};

}  // namespace prom::la
