// Element-level kernels: stiffness and internal force for one cell.
//  - small_strain_element: linear elastic or J2-plastic HEX8/TET4, with
//    optional B-bar (mean dilatation) treatment for near-incompressibility
//    (the paper's "mixed formulation", DESIGN.md substitution 4).
//  - total_lagrangian_element: finite-deformation Neo-Hookean with an
//    optional F-bar volumetric correction.
#pragma once

#include <span>

#include "common/config.h"
#include "fem/material.h"
#include "geom/vec3.h"
#include "la/dense.h"

namespace prom::fem {

/// Gauss points per element used by these kernels (8 for HEX8, 4 for TET4).
int gauss_points_per_cell(int nodes);

/// Small-strain element update.
///  - `coords`/`disp`: nodal coordinates and displacements (3 per node).
///  - `committed`/`updated`: per-Gauss-point J2 states (ignored for the
///    linear elastic model; must both have gauss_points_per_cell entries
///    for J2).
///  - `stiffness` (3n x 3n) and `f_int` (3n) are accumulated from zero;
///    either may be null/empty to skip.
/// Returns the number of Gauss points in the plastic regime.
int small_strain_element(const Material& mat, std::span<const Vec3> coords,
                         std::span<const real> disp, bool bbar,
                         std::span<const J2State> committed,
                         std::span<J2State> updated,
                         la::DenseMatrix* stiffness, std::span<real> f_int);

/// Total-Lagrangian Neo-Hookean element update (same conventions).
void total_lagrangian_element(const Material& mat,
                              std::span<const Vec3> coords,
                              std::span<const real> disp, bool fbar,
                              la::DenseMatrix* stiffness,
                              std::span<real> f_int);

}  // namespace prom::fem
