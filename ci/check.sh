#!/usr/bin/env bash
# The one-command CI gate: optimized build + tier-1 test suite, the same
# suite again under Address/UB sanitizers, then the ThreadSanitizer race
# gate (ci/tsan.sh). Everything a PR must pass.
#
# By default only tier-1 tests run (`ctest -L tier1`) — the fast PR gate.
# Pass --full to also run slow-labelled tests in both configurations, the
# nightly-style full lane.
set -euo pipefail
cd "$(dirname "$0")/.."

label_args=(-L tier1)
if [[ "${1:-}" == "--full" ]]; then
  label_args=()
  shift
fi

cmake --preset release
cmake --build --preset release -j"$(nproc)"
ctest --test-dir build-release --output-on-failure -j"$(nproc)" \
  "${label_args[@]}"

cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j"$(nproc)"
ctest --preset asan-ubsan -j"$(nproc)" "${label_args[@]}"

# The matrix-free equivalence battery gets an explicit direct run under
# ASan/UBSan on top of the labelled ctest pass: it exercises the SIMD
# element kernel's raw slot gathers and the overlapped DistMf ghost
# indexing — exactly where an out-of-bounds lane would hide.
./build-asan-ubsan/tests/test_mf_equiv

./ci/tsan.sh

echo "ci/check.sh: OK"
