file(REMOVE_RECURSE
  "CMakeFiles/test_restriction.dir/test_restriction.cpp.o"
  "CMakeFiles/test_restriction.dir/test_restriction.cpp.o.d"
  "test_restriction"
  "test_restriction.pdb"
  "test_restriction[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_restriction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
