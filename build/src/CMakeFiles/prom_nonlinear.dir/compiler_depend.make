# Empty compiler generated dependencies file for prom_nonlinear.
# This may be replaced when dependencies are built.
