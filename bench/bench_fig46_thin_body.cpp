// Figures 4-6 reproduction: the thin-body MIS pathology and its fix.
// Figure 4 shows a plain MIS on a thin region losing the cover of one
// surface; Figure 5 the modified graph (feature edges removed); Figure 6
// the resulting MIS that keeps both surfaces. This bench quantifies the
// effect on a one-element-thick plate, sweeping the thickness, and shows
// the consequence for the multigrid solver (ablation called out in
// DESIGN.md).
#include <cstdio>

#include "app/driver.h"
#include "coarsen/coarsen.h"
#include "fem/assembly.h"
#include "mesh/generate.h"
#include "mg/hierarchy.h"
#include "mg/solver.h"

using namespace prom;

namespace {

struct Row {
  idx selected, top, bottom;
  int iters;
  bool converged;
};

Row run(idx nx, real lz, bool modify) {
  mesh::Mesh mesh = mesh::thin_slab(nx, nx, 1, 16.0, 16.0, lz);
  const graph::Graph g = mesh.vertex_graph();
  const coarsen::Classification cls = coarsen::classify_mesh(mesh);
  coarsen::CoarsenOptions copts;
  copts.modify_graph = modify;
  const auto level = coarsen::coarsen_level(mesh.coords(), g, cls, 0, copts);
  Row row{static_cast<idx>(level.selected.size()), 0, 0, 0, false};
  for (idx v : level.selected) {
    if (mesh.coord(v).z > lz - 1e-9) row.top++;
    if (mesh.coord(v).z < 1e-9) row.bottom++;
  }
  // MG solve of plate bending with this coarsening option.
  fem::DofMap dofmap(mesh.num_vertices());
  dofmap.fix_all(
      mesh.vertices_where([](const Vec3& p) { return p.x < 1e-9; }), 0.0);
  for (idx v : mesh.vertices_where(
           [](const Vec3& p) { return p.x > 16.0 - 1e-9; })) {
    dofmap.fix(v, 2, -0.2);
  }
  dofmap.finalize();
  fem::Material mat;
  fem::FeProblem problem(mesh, {mat}, dofmap);
  fem::LinearSystem sys = fem::assemble_linear_system(problem);
  mg::MgOptions mg_opts;
  mg_opts.coarsen.modify_graph = modify;
  mg_opts.coarsest_max_dofs = 250;
  const mg::Hierarchy h =
      mg::Hierarchy::build(mesh, dofmap, sys.stiffness, mg_opts);
  std::vector<real> x(sys.rhs.size(), 0.0);
  mg::MgSolveOptions so;
  so.rtol = 1e-8;
  so.max_iters = 500;
  const la::KrylovResult res = mg_pcg_solve(h, sys.rhs, x, so);
  row.iters = res.iterations;
  row.converged = res.converged;
  return row;
}

}  // namespace

int main() {
  std::printf("Figures 4-6: MIS on thin bodies, plain vs modified graph\n");
  std::printf("%-10s %-10s | %-9s %-5s %-7s %-8s | %-9s %-5s %-7s %-8s\n",
              "thickness", "plate", "plain:sel", "top", "bottom", "MG its",
              "mod:sel", "top", "bottom", "MG its");
  for (real lz : {2.0, 1.0, 0.5, 0.25}) {
    const Row plain = run(16, lz, false);
    const Row mod = run(16, lz, true);
    std::printf(
        "%-10.2f %-10s | %-9d %-5d %-7d %-8d | %-9d %-5d %-7d %-8d\n", lz,
        "16x16x1", plain.selected, plain.top, plain.bottom, plain.iters,
        mod.selected, mod.top, mod.bottom, mod.iters);
  }
  std::printf(
      "\nshape claims: with the modified graph both surfaces keep a\n"
      "comparable number of selected vertices at every thickness (Fig 6),\n"
      "while the plain MIS lets one surface suppress the other as the\n"
      "body gets thinner (Fig 4); the multigrid iteration count with the\n"
      "modified graph is at least as good and typically better on the\n"
      "thinnest plates.\n");
  return 0;
}
