// The partition-based parallel MIS of §4.2 (Adams' parallel MIS [2 in the
// paper]): each rank owns the vertices assigned to it, iterates the greedy
// algorithm locally, and may select a vertex v only when every neighbor v1
// is deleted, or is out-ranked (v.rank > v1.rank), or ties are broken by
// processor number (v.rank == v1.rank and v.proc >= v1.proc). Boundary
// vertex states are exchanged between rounds until no vertex is undone.
//
// Each rank is handed the same replicated global graph and extracts its
// local view (owned vertices + ghosts); the result is identical on every
// rank. With identical per-rank traversal orders the parallel result also
// matches the rank-emulating serial algorithm — a property the tests use.
#pragma once

#include <span>
#include <vector>

#include "common/config.h"
#include "graph/graph.h"
#include "parx/runtime.h"

namespace prom::coarsen {

struct ParallelMisOptions {
  /// Per-vertex classification ranks (empty = all zero).
  std::span<const idx> ranks;
  /// Global traversal-order permutation (empty = natural); each rank
  /// traverses its owned vertices in this order (after the rank sort).
  std::span<const idx> order;
};

struct ParallelMisResult {
  std::vector<idx> selected;  ///< the global MIS, ascending
  int rounds = 0;             ///< communication rounds used
};

/// Runs inside a parx SPMD region. `owner[v]` is the rank that owns global
/// vertex v. All ranks receive the full result.
ParallelMisResult parallel_mis(parx::Comm& comm, const graph::Graph& g,
                               std::span<const idx> owner,
                               const ParallelMisOptions& opts = {});

}  // namespace prom::coarsen
