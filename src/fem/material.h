// Constitutive models: the paper's §7 problem combines a Neo-Hookean
// hyperelastic "soft" material (E = 1e-4, nu = 0.49, large deformation)
// with a J2-plastic "hard" material with kinematic hardening (E = 1,
// nu = 0.3, yield 0.001, hardening 0.002 E) — Table 1. The J2 update here
// is the textbook small-strain radial return (Simo & Hughes, Box 3.2);
// DESIGN.md substitution 4 documents how this stands in for the paper's
// finite-strain mixed formulation.
//
// All tangents are full fourth-order tensors C_ijkl (no Voigt notation),
// stored row-major in a flat array of 81 values.
#pragma once

#include <array>
#include <limits>

#include "common/config.h"
#include "geom/mat3.h"

namespace prom::fem {

enum class MaterialModel : std::uint8_t {
  kLinearElastic,
  kNeoHookean,
  kJ2Plasticity,
};

struct Material {
  MaterialModel model = MaterialModel::kLinearElastic;
  real youngs = 1;
  real poisson = 0.3;
  real yield_stress = std::numeric_limits<real>::infinity();
  real hardening = 0;  ///< linear kinematic hardening modulus H

  real mu() const { return youngs / (2 * (1 + poisson)); }
  real lambda() const {
    return youngs * poisson / ((1 + poisson) * (1 - 2 * poisson));
  }
  real bulk() const { return youngs / (3 * (1 - 2 * poisson)); }

  /// The paper's Table 1 materials.
  static Material paper_soft();
  static Material paper_hard();
};

/// Fourth-order tangent tensor, flattened as C[((i*3+j)*3+k)*3+l].
using Tangent = std::array<real, 81>;

inline real& tangent_at(Tangent& c, int i, int j, int k, int l) {
  return c[((i * 3 + j) * 3 + k) * 3 + l];
}
inline real tangent_at(const Tangent& c, int i, int j, int k, int l) {
  return c[((i * 3 + j) * 3 + k) * 3 + l];
}

/// Isotropic linear elastic tangent:
/// C_ijkl = lambda d_ij d_kl + mu (d_ik d_jl + d_il d_jk).
void elastic_tangent(const Material& mat, Tangent& c);

/// Per-Gauss-point history for the J2 model.
struct J2State {
  Mat3 plastic_strain{};
  Mat3 backstress{};
  real eq_plastic = 0;  ///< accumulated equivalent plastic strain

  bool has_yielded() const { return eq_plastic > 0; }
};

/// Radial return for J2 plasticity with linear kinematic hardening.
/// Consumes the *committed* state, produces the trial-updated state, the
/// stress, and the consistent (algorithmic) tangent. Returns true if this
/// update is in the plastic regime.
bool j2_radial_return(const Material& mat, const Mat3& strain,
                      const J2State& committed, J2State& updated,
                      Mat3& stress, Tangent& c_ep);

/// Compressible Neo-Hookean (W = mu/2 (I_C - 3) - mu ln J + lambda/2 ln^2 J):
/// first Piola-Kirchhoff stress P(F) and first elasticity tensor
/// A_iJkL = dP_iJ / dF_kL. Throws if det F <= 0.
void neo_hookean_stress(const Material& mat, const Mat3& f, Mat3& p,
                        Tangent& a);

}  // namespace prom::fem
