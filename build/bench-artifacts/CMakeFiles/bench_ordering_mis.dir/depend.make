# Empty dependencies file for bench_ordering_mis.
# This may be replaced when dependencies are built.
