file(REMOVE_RECURSE
  "libprom_partition.a"
)
