// Unstructured finite element mesh container (the FEAP-substitute data
// model). A mesh is a homogeneous collection of HEX8 or TET4 cells with
// per-cell material ids. The solver needs only data "easily available in
// most finite element applications" (§1): coordinates, connectivity, and
// materials — everything else (vertex graphs, boundary facets, features) is
// derived here.
#pragma once

#include <array>
#include <functional>
#include <span>
#include <vector>

#include "common/config.h"
#include "geom/aabb.h"
#include "geom/vec3.h"
#include "graph/graph.h"

namespace prom::mesh {

enum class CellKind : std::uint8_t { kHex8, kTet4 };

inline constexpr int nodes_per_cell(CellKind kind) {
  return kind == CellKind::kHex8 ? 8 : 4;
}

/// A facet of a cell lying on a boundary: either the exterior boundary of
/// the domain or an interface between different materials (§4.4 considers
/// both). Triangles store kInvalidIdx in v[3].
struct Facet {
  std::array<idx, 4> v{kInvalidIdx, kInvalidIdx, kInvalidIdx, kInvalidIdx};
  idx cell = kInvalidIdx;      ///< owning cell
  idx material = kInvalidIdx;  ///< material of the owning cell
  Vec3 normal;                 ///< unit outward normal (w.r.t. owning cell)

  int num_vertices() const { return v[3] == kInvalidIdx ? 3 : 4; }
  std::span<const idx> vertices() const {
    return {v.data(), static_cast<std::size_t>(num_vertices())};
  }
};

class Mesh {
 public:
  Mesh() = default;
  Mesh(CellKind kind, std::vector<Vec3> coords, std::vector<idx> cells,
       std::vector<idx> cell_material);

  CellKind kind() const { return kind_; }
  idx num_vertices() const { return static_cast<idx>(coords_.size()); }
  idx num_cells() const {
    return cells_.empty()
               ? 0
               : static_cast<idx>(cells_.size()) / nodes_per_cell(kind_);
  }

  const std::vector<Vec3>& coords() const { return coords_; }
  const Vec3& coord(idx v) const { return coords_[v]; }

  std::span<const idx> cell(idx e) const {
    const int npc = nodes_per_cell(kind_);
    return {cells_.data() + static_cast<std::size_t>(e) * npc,
            static_cast<std::size_t>(npc)};
  }
  idx material(idx e) const { return cell_material_[e]; }
  const std::vector<idx>& cell_materials() const { return cell_material_; }

  /// Centroid of cell e.
  Vec3 centroid(idx e) const;

  Aabb bounding_box() const { return Aabb::of(coords_); }

  /// Vertex connectivity graph: two vertices are adjacent iff they share a
  /// cell (the graph of the assembled stiffness matrix — the graph the MIS
  /// coarsener traverses).
  graph::Graph vertex_graph() const;

  /// For each vertex, the list of cells containing it (CSR layout).
  void vertex_to_cells(std::vector<nnz_t>& offsets,
                       std::vector<idx>& cells) const;

  /// Vertices satisfying a coordinate predicate (used to build BC sets).
  std::vector<idx> vertices_where(
      const std::function<bool(const Vec3&)>& pred) const;

  /// Total mesh volume (sum of |cell| volumes); for sanity checks.
  real volume() const;

 private:
  CellKind kind_ = CellKind::kHex8;
  std::vector<Vec3> coords_;
  std::vector<idx> cells_;
  std::vector<idx> cell_material_;
};

/// All boundary facets: cell faces not shared with another cell *of the
/// same material* — i.e. the exterior surface plus material interfaces.
/// Normals point out of the owning cell. Interfaces produce one facet per
/// side (each side belongs to its own material's boundary), matching the
/// paper's definition of a "domain" as a contiguous region of one material.
std::vector<Facet> boundary_facets(const Mesh& mesh);

/// Facet adjacency for the face-identification algorithm (Fig 3): two
/// facets are adjacent iff they share an edge (two vertices) and belong to
/// the same material's boundary.
graph::Graph facet_adjacency(std::span<const Facet> facets);

/// Signed/unsigned volume of a single cell.
real cell_volume(const Mesh& mesh, idx e);

}  // namespace prom::mesh
