file(REMOVE_RECURSE
  "CMakeFiles/test_coarsen_mis.dir/test_coarsen_mis.cpp.o"
  "CMakeFiles/test_coarsen_mis.dir/test_coarsen_mis.cpp.o.d"
  "test_coarsen_mis"
  "test_coarsen_mis.pdb"
  "test_coarsen_mis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coarsen_mis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
