// §8 future-work reproduction: "we also plan to explore alternative
// (effective) unstructured multigrid algorithms such as smoothed
// aggregation [25], to evaluate (and make publicly available) competitive
// algorithms." Head-to-head on the same problems with the same smoothers,
// cycles and outer PCG: the paper's geometric MIS/Delaunay coarsening vs
// algebraic smoothed aggregation.
#include <cstdio>
#include <cstdlib>

#include "app/driver.h"
#include "common/timer.h"
#include "mg/sa.h"
#include "mg/solver.h"

using namespace prom;

namespace {

struct Row {
  int levels, iterations;
  double setup_s, solve_s;
  bool converged;
};

Row run(const app::ModelProblem& model, const fem::LinearSystem& sys,
        bool use_sa, real rtol) {
  mg::MgOptions mo;
  Timer t;
  const mg::Hierarchy h =
      use_sa ? mg::build_smoothed_aggregation(model.mesh, model.dofmap,
                                              sys.stiffness, mo)
             : mg::Hierarchy::build(model.mesh, model.dofmap, sys.stiffness,
                                    mo);
  Row row;
  row.setup_s = t.seconds();
  row.levels = h.num_levels();
  t.reset();
  std::vector<real> x(sys.rhs.size(), 0.0);
  mg::MgSolveOptions so;
  so.rtol = rtol;
  so.max_iters = 300;
  const la::KrylovResult res = mg_pcg_solve(h, sys.rhs, x, so);
  row.solve_s = t.seconds();
  row.iterations = res.iterations;
  row.converged = res.converged;
  return row;
}

}  // namespace

int main() {
  std::printf("Geometric (MIS/Delaunay, the paper) vs smoothed aggregation "
              "(Vanek et al. [25])\n");
  std::printf("%-26s %-8s | %-4s %-5s %-8s %-8s | %-4s %-5s %-8s %-8s\n",
              "problem", "dofs", "GMG", "its", "setup s", "solve s", "SA",
              "its", "setup s", "solve s");

  // Elastic cubes of growing size.
  for (idx n : {8, 12, 16}) {
    const app::ModelProblem model = app::make_box_problem(n);
    fem::FeProblem fe(model.mesh, model.materials, model.dofmap);
    const fem::LinearSystem sys = fem::assemble_linear_system(fe);
    const Row g = run(model, sys, false, 1e-8);
    const Row s = run(model, sys, true, 1e-8);
    std::printf("cube %2dx%2dx%-2d             %-8d | %-4d %-5d %-8.2f %-8.2f "
                "| %-4d %-5d %-8.2f %-8.2f\n",
                n, n, n, sys.stiffness.nrows, g.levels, g.iterations,
                g.setup_s, g.solve_s, s.levels, s.iterations, s.setup_s,
                s.solve_s);
  }

  // The paper's model problem (material jumps + near-incompressibility).
  {
    mesh::SphereInCubeParams sp;
    sp.base_core_layers = 1;
    sp.base_outer_layers = 1;
    const app::ModelProblem model = app::make_sphere_problem(sp, 1.2);
    fem::FeProblem fe(model.mesh, model.materials, model.dofmap);
    const fem::LinearSystem sys = fem::assemble_linear_system(fe);
    const Row g = run(model, sys, false, 1e-4);
    const Row s = run(model, sys, true, 1e-4);
    std::printf("concentric spheres (1e-4)  %-8d | %-4d %-5d %-8.2f %-8.2f "
                "| %-4d %-5d %-8.2f %-8.2f\n",
                sys.stiffness.nrows, g.levels, g.iterations, g.setup_s,
                g.solve_s, s.levels, s.iterations, s.setup_s, s.solve_s);
  }
  std::printf(
      "\nshape claims: both methods converge with bounded, comparable\n"
      "iteration counts; SA needs no geometry (no Delaunay/face data) at\n"
      "the cost of denser coarse operators — the trade the paper's §8\n"
      "anticipated when proposing to evaluate it.\n");
  return 0;
}
