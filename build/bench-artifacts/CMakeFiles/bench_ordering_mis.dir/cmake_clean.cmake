file(REMOVE_RECURSE
  "../bench/bench_ordering_mis"
  "../bench/bench_ordering_mis.pdb"
  "CMakeFiles/bench_ordering_mis.dir/bench_ordering_mis.cpp.o"
  "CMakeFiles/bench_ordering_mis.dir/bench_ordering_mis.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ordering_mis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
