file(REMOVE_RECURSE
  "../bench/bench_sa_vs_gmg"
  "../bench/bench_sa_vs_gmg.pdb"
  "CMakeFiles/bench_sa_vs_gmg.dir/bench_sa_vs_gmg.cpp.o"
  "CMakeFiles/bench_sa_vs_gmg.dir/bench_sa_vs_gmg.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sa_vs_gmg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
