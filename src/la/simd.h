// Fixed-width SIMD pack for the explicitly vectorized kernels (the
// matrix-free element kernel in fem/matrix_free.cpp and the 3x3 block
// microkernel in la/block_kernels.h).
//
// The width is a compile-time constant, kSimdLanes = 4 doubles (one AVX
// register, two SSE registers, or four scalar ops — the compiler lowers the
// generic vector to whatever the target provides). It is deliberately NOT
// runtime-dispatched: every lane performs an independent IEEE-754 binary64
// operation, identical to the scalar expression, so results are the same
// bits on every ISA and at every thread count — lane width is part of the
// data layout, not of the rounding behaviour. (The project builds without
// -ffast-math and without FMA contraction, see the top-level CMakeLists.)
//
// On GNU-compatible compilers the pack is a vector_size extension type and
// the operators compile to vector instructions; elsewhere a plain array
// with per-lane loops produces the same values (just slower).
#pragma once

#include <cstring>

#include "common/config.h"

namespace prom::la {

/// Lanes per pack. Chosen as 256 bits of binary64: wide enough to fill an
/// AVX unit, narrow enough that tail padding (inert lanes in the last
/// element batch) stays cheap on small meshes.
inline constexpr int kSimdLanes = 4;

#if defined(__GNUC__) || defined(__clang__)
#define PROM_SIMD_VECTOR_EXT 1
#endif

/// A pack of kSimdLanes doubles with elementwise arithmetic.
struct RealPack {
#ifdef PROM_SIMD_VECTOR_EXT
  typedef real native_t __attribute__((vector_size(kSimdLanes * sizeof(real))));
  native_t v;
#else
  real v[kSimdLanes];
#endif

  friend RealPack operator+(RealPack a, RealPack b) {
#ifdef PROM_SIMD_VECTOR_EXT
    return {a.v + b.v};
#else
    RealPack r;
    for (int l = 0; l < kSimdLanes; ++l) r.v[l] = a.v[l] + b.v[l];
    return r;
#endif
  }
  friend RealPack operator-(RealPack a, RealPack b) {
#ifdef PROM_SIMD_VECTOR_EXT
    return {a.v - b.v};
#else
    RealPack r;
    for (int l = 0; l < kSimdLanes; ++l) r.v[l] = a.v[l] - b.v[l];
    return r;
#endif
  }
  friend RealPack operator*(RealPack a, RealPack b) {
#ifdef PROM_SIMD_VECTOR_EXT
    return {a.v * b.v};
#else
    RealPack r;
    for (int l = 0; l < kSimdLanes; ++l) r.v[l] = a.v[l] * b.v[l];
    return r;
#endif
  }
  RealPack& operator+=(RealPack o) { return *this = *this + o; }
  RealPack& operator-=(RealPack o) { return *this = *this - o; }
  RealPack& operator*=(RealPack o) { return *this = *this * o; }
};

/// All lanes zero.
inline RealPack pack_zero() {
  RealPack r;
  std::memset(&r, 0, sizeof(r));
  return r;
}

/// All lanes = s.
inline RealPack pack_broadcast(real s) {
  RealPack r;
  for (int l = 0; l < kSimdLanes; ++l) r.v[l] = s;
  return r;
}

/// Unaligned load of kSimdLanes contiguous doubles.
inline RealPack pack_load(const real* p) {
  RealPack r;
  std::memcpy(&r, p, sizeof(r));
  return r;
}

/// Unaligned store of kSimdLanes contiguous doubles.
inline void pack_store(real* p, RealPack a) { std::memcpy(p, &a, sizeof(a)); }

/// Single lane read (lane index must be in [0, kSimdLanes)).
inline real pack_lane(RealPack a, int lane) { return a.v[lane]; }

/// Single lane write.
inline void pack_set_lane(RealPack& a, int lane, real s) { a.v[lane] = s; }

}  // namespace prom::la
