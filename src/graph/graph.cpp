#include "graph/graph.h"

#include <algorithm>

#include "common/error.h"

namespace prom::graph {

Graph Graph::from_edges(idx num_vertices,
                        std::span<const std::pair<idx, idx>> edges) {
  std::vector<std::pair<idx, idx>> dir;
  dir.reserve(edges.size() * 2);
  for (const auto& [u, v] : edges) {
    PROM_CHECK(u >= 0 && u < num_vertices && v >= 0 && v < num_vertices);
    if (u == v) continue;
    dir.emplace_back(u, v);
    dir.emplace_back(v, u);
  }
  std::sort(dir.begin(), dir.end());
  dir.erase(std::unique(dir.begin(), dir.end()), dir.end());

  Graph g;
  g.nv_ = num_vertices;
  g.xadj_.assign(static_cast<std::size_t>(num_vertices) + 1, 0);
  g.adj_.resize(dir.size());
  for (const auto& [u, v] : dir) g.xadj_[u + 1]++;
  for (idx v = 0; v < num_vertices; ++v) g.xadj_[v + 1] += g.xadj_[v];
  std::vector<nnz_t> next(g.xadj_.begin(), g.xadj_.end() - 1);
  for (const auto& [u, v] : dir) g.adj_[next[u]++] = v;
  return g;
}

Graph Graph::from_csr(idx num_vertices, std::vector<nnz_t> xadj,
                      std::vector<idx> adj) {
  PROM_CHECK(static_cast<idx>(xadj.size()) == num_vertices + 1);
  PROM_CHECK(xadj.back() == static_cast<nnz_t>(adj.size()));
  Graph g;
  g.nv_ = num_vertices;
  g.xadj_ = std::move(xadj);
  g.adj_ = std::move(adj);
  return g;
}

bool Graph::has_edge(idx u, idx v) const {
  const auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

bool Graph::is_symmetric() const {
  for (idx u = 0; u < nv_; ++u) {
    for (idx v : neighbors(u)) {
      if (!has_edge(v, u)) return false;
    }
  }
  return true;
}

bool is_independent_set(const Graph& g, std::span<const idx> set) {
  std::vector<char> in_set(static_cast<std::size_t>(g.num_vertices()), 0);
  for (idx v : set) {
    PROM_CHECK(v >= 0 && v < g.num_vertices());
    in_set[v] = 1;
  }
  for (idx v : set) {
    for (idx u : g.neighbors(v)) {
      if (in_set[u]) return false;
    }
  }
  return true;
}

bool is_maximal_independent_set(const Graph& g, std::span<const idx> set) {
  if (!is_independent_set(g, set)) return false;
  std::vector<char> covered(static_cast<std::size_t>(g.num_vertices()), 0);
  for (idx v : set) {
    covered[v] = 1;
    for (idx u : g.neighbors(v)) covered[u] = 1;
  }
  return std::all_of(covered.begin(), covered.end(),
                     [](char c) { return c != 0; });
}

}  // namespace prom::graph
