// Distributed (row-block) vectors over the parx runtime. A distributed
// vector is owned in contiguous global index ranges described by a
// RowDist; each rank holds only its local block. Reductions (dot, norm)
// are allreduce operations — exactly the communication pattern whose cost
// §6's communication efficiency measures.
#pragma once

#include <span>
#include <vector>

#include "common/config.h"
#include "la/multivec.h"
#include "parx/runtime.h"

namespace prom::dla {

/// Ownership map: rank r owns global indices [offsets[r], offsets[r+1]).
struct RowDist {
  std::vector<idx> offsets;  // size nranks + 1

  int nranks() const { return static_cast<int>(offsets.size()) - 1; }
  idx global_size() const { return offsets.back(); }
  idx begin(int rank) const { return offsets[rank]; }
  idx end(int rank) const { return offsets[rank + 1]; }
  idx local_size(int rank) const { return end(rank) - begin(rank); }

  /// Owner of global index gid (binary search).
  int owner(idx gid) const;

  /// Even contiguous split of [0, n) over nranks.
  static RowDist block(idx n, int nranks);

  /// Split of [0, n) where index i belongs to rank owner_of[i]; requires
  /// owners to be non-decreasing (i.e. indices pre-permuted by owner).
  static RowDist from_sorted_owners(std::span<const idx> owner_of,
                                    int nranks);
};

/// <a, b> over the distributed vector (local chunks passed in).
real dist_dot(parx::Comm& comm, std::span<const real> a,
              std::span<const real> b);

/// ||a||_2 over the distributed vector.
real dist_nrm2(parx::Comm& comm, std::span<const real> a);

/// Gathers a distributed vector to a full copy on every rank.
std::vector<real> dist_gather_all(parx::Comm& comm, const RowDist& dist,
                                  std::span<const real> local);

/// Gathers k distributed vectors to full copies on every rank with a
/// single allgatherv (each rank contributes its column-major local
/// block). Column j bitwise equals dist_gather_all on that column.
la::MultiVec dist_gather_all_mv(parx::Comm& comm, const RowDist& dist,
                                const la::MultiVec& local);

}  // namespace prom::dla
