// Abstract linear operator. Krylov methods see the system matrix and the
// preconditioner only through this interface, which lets the same CG code
// run on a serial CSR matrix, the full-multigrid preconditioner, or a
// distributed operator.
#pragma once

#include <span>

#include "common/config.h"
#include "la/csr.h"

namespace prom::la {

class LinearOperator {
 public:
  virtual ~LinearOperator() = default;

  virtual idx rows() const = 0;
  virtual idx cols() const = 0;

  /// y = Op(x). `x` and `y` never alias.
  virtual void apply(std::span<const real> x, std::span<real> y) const = 0;

  /// Y = Op(X), column-blocked. The default applies the operator one
  /// column at a time (trivially bitwise-equal to k standalone applies);
  /// formats with a one-matrix-pass SpMM override it. Overrides must keep
  /// every column bitwise identical to `apply` on that column alone.
  virtual void apply_mv(const MultiVec& x, MultiVec& y) const {
    for (int j = 0; j < x.cols(); ++j) apply(x.col(j), y.col(j));
  }
};

/// Adapts a CSR matrix (not owned) to the LinearOperator interface.
class CsrOperator final : public LinearOperator {
 public:
  explicit CsrOperator(const Csr& a) : a_(&a) {}

  idx rows() const override { return a_->nrows; }
  idx cols() const override { return a_->ncols; }
  void apply(std::span<const real> x, std::span<real> y) const override {
    a_->spmv(x, y);
  }
  void apply_mv(const MultiVec& x, MultiVec& y) const override {
    a_->spmm(x, y);
  }

  /// Fused blocked residual (picked up by SerialBackend's requires-hook
  /// when called with the concrete adapter type).
  void residual_mv(const MultiVec& b, const MultiVec& x, MultiVec& r) const {
    a_->residual_mv(b, x, r);
  }

 private:
  const Csr* a_;
};

/// The identity, usable as a "no preconditioner" placeholder.
class IdentityOperator final : public LinearOperator {
 public:
  explicit IdentityOperator(idx n) : n_(n) {}
  idx rows() const override { return n_; }
  idx cols() const override { return n_; }
  void apply(std::span<const real> x, std::span<real> y) const override {
    for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i];
  }

 private:
  idx n_;
};

}  // namespace prom::la
