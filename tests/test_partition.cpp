#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "mesh/generate.h"
#include "partition/greedy.h"
#include "partition/rcb.h"

namespace prom::partition {
namespace {

std::vector<Vec3> random_points(idx n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec3> pts(static_cast<std::size_t>(n));
  for (Vec3& p : pts) {
    p = {rng.next_real(), rng.next_real(), rng.next_real()};
  }
  return pts;
}

class RcbParts : public ::testing::TestWithParam<idx> {};

TEST_P(RcbParts, BalancedPartition) {
  const idx nparts = GetParam();
  const auto pts = random_points(1000, 7);
  const auto part = rcb_partition(pts, nparts);
  const auto sizes = part_sizes(part, nparts);
  const idx lo = *std::min_element(sizes.begin(), sizes.end());
  const idx hi = *std::max_element(sizes.begin(), sizes.end());
  // RCB with proportional splits: near-perfect balance.
  EXPECT_LE(hi - lo, nparts);
  EXPECT_GT(lo, 0);
}

TEST_P(RcbParts, GeometricLocality) {
  // Points in the same part should be closer on average than points in
  // different parts (RCB produces spatially compact parts).
  const idx nparts = GetParam();
  if (nparts < 2) GTEST_SKIP();
  const auto pts = random_points(600, 11);
  const auto part = rcb_partition(pts, nparts);
  Rng rng(3);
  double same = 0, diff = 0;
  int same_n = 0, diff_n = 0;
  for (int trial = 0; trial < 4000; ++trial) {
    const idx a = static_cast<idx>(rng.next_below(600));
    const idx b = static_cast<idx>(rng.next_below(600));
    if (a == b) continue;
    const double d = distance(pts[a], pts[b]);
    if (part[a] == part[b]) {
      same += d;
      ++same_n;
    } else {
      diff += d;
      ++diff_n;
    }
  }
  ASSERT_GT(same_n, 0);
  ASSERT_GT(diff_n, 0);
  EXPECT_LT(same / same_n, diff / diff_n);
}

INSTANTIATE_TEST_SUITE_P(Parts, RcbParts, ::testing::Values(1, 2, 3, 4, 7, 16));

TEST(Rcb, SinglePointManyParts) {
  const std::vector<Vec3> pts = {{0, 0, 0}};
  const auto part = rcb_partition(pts, 4);
  EXPECT_EQ(part.size(), 1u);
  EXPECT_GE(part[0], 0);
  EXPECT_LT(part[0], 4);
}

TEST(Rcb, DeterministicOnTies) {
  // All points identical: still a valid deterministic partition.
  const std::vector<Vec3> pts(64, Vec3{1, 1, 1});
  const auto p1 = rcb_partition(pts, 4);
  const auto p2 = rcb_partition(pts, 4);
  EXPECT_EQ(p1, p2);
  const auto sizes = part_sizes(p1, 4);
  for (idx s : sizes) EXPECT_EQ(s, 16);
}

TEST(PartsToBlocks, RoundTrip) {
  const std::vector<idx> part = {0, 1, 0, 2, 1};
  const auto blocks = parts_to_blocks(part, 3);
  ASSERT_EQ(blocks.size(), 3u);
  EXPECT_EQ(blocks[0], (std::vector<idx>{0, 2}));
  EXPECT_EQ(blocks[1], (std::vector<idx>{1, 4}));
  EXPECT_EQ(blocks[2], (std::vector<idx>{3}));
}

TEST(PartsToBlocks, KeepsEmptyPartsAligned) {
  // Part 1 is empty: blocks must stay aligned with part ids (blocks[p] is
  // part p's members), not silently compact and shift later parts down.
  const std::vector<idx> part = {0, 2, 0, 2};
  const auto blocks = parts_to_blocks(part, 4);
  ASSERT_EQ(blocks.size(), 4u);
  EXPECT_EQ(blocks[0], (std::vector<idx>{0, 2}));
  EXPECT_TRUE(blocks[1].empty());
  EXPECT_EQ(blocks[2], (std::vector<idx>{1, 3}));
  EXPECT_TRUE(blocks[3].empty());
}

graph::Graph mesh_graph(idx n) {
  return mesh::box_hex(n, n, n, {0, 0, 0}, {1, 1, 1}).vertex_graph();
}

class GreedyParts : public ::testing::TestWithParam<idx> {};

TEST_P(GreedyParts, CoversAllVerticesWithBoundedImbalance) {
  const idx nparts = GetParam();
  const auto g = mesh_graph(6);
  const auto part = greedy_graph_partition(g, nparts);
  const auto sizes = part_sizes(part, nparts);
  const double avg = static_cast<double>(g.num_vertices()) / nparts;
  for (idx s : sizes) {
    EXPECT_GT(s, 0);
    EXPECT_LE(s, static_cast<idx>(1.3 * avg) + 2);
  }
}

TEST_P(GreedyParts, CutBeatsRandomAssignment) {
  const idx nparts = GetParam();
  if (nparts < 2) GTEST_SKIP();
  const auto g = mesh_graph(6);
  const auto part = greedy_graph_partition(g, nparts);
  // Random assignment reference.
  Rng rng(5);
  std::vector<idx> random_part(static_cast<std::size_t>(g.num_vertices()));
  for (idx& p : random_part) p = static_cast<idx>(rng.next_below(nparts));
  EXPECT_LT(edge_cut(g, part), edge_cut(g, random_part) / 2);
}

INSTANTIATE_TEST_SUITE_P(Parts, GreedyParts, ::testing::Values(1, 2, 4, 8));

TEST(BlockJacobiBlocks, PaperDensity) {
  // 6 blocks per 1000 unknowns (§7.2): 2000 vertices -> 12 blocks.
  const auto g = mesh_graph(12);  // 2197 vertices
  const auto blocks = block_jacobi_blocks(g, 6);
  EXPECT_EQ(blocks.size(), 14u);  // ceil(6 * 2197 / 1000)
  idx total = 0;
  for (const auto& b : blocks) total += static_cast<idx>(b.size());
  EXPECT_EQ(total, g.num_vertices());
}

TEST(BlockJacobiBlocks, DegenerateTinyGraph) {
  const auto g = graph::Graph::from_edges(
      3, std::vector<std::pair<idx, idx>>{{0, 1}});
  const auto blocks = block_jacobi_blocks(g, 6, /*min_blocks=*/5);
  EXPECT_EQ(blocks.size(), 3u);  // one vertex per block
}

}  // namespace
}  // namespace prom::partition
