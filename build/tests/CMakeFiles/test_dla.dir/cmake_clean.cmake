file(REMOVE_RECURSE
  "CMakeFiles/test_dla.dir/test_dla.cpp.o"
  "CMakeFiles/test_dla.dir/test_dla.cpp.o.d"
  "test_dla"
  "test_dla.pdb"
  "test_dla[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
