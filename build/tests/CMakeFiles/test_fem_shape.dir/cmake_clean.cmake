file(REMOVE_RECURSE
  "CMakeFiles/test_fem_shape.dir/test_fem_shape.cpp.o"
  "CMakeFiles/test_fem_shape.dir/test_fem_shape.cpp.o.d"
  "test_fem_shape"
  "test_fem_shape.pdb"
  "test_fem_shape[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fem_shape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
