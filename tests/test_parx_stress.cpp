// parx stress suite (ISSUE 1 satellite): randomized point-to-point
// traffic and collectives across 2–16 virtual ranks, checked against
// serial references, plus the composition test — parx rank-threads with
// intra-rank kernel threads active at the same time. Run under the `tsan`
// CMake preset this doubles as the data-race gate for the two-level
// parallelism model.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <tuple>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "la/csr.h"
#include "la/vec.h"
#include "parx/runtime.h"

namespace prom::parx {
namespace {

/// One scheduled message. The schedule is derived from a shared seed, so
/// every rank reconstructs the same plan and knows exactly what to expect.
struct PlannedMessage {
  int src;
  int dst;
  int tag;
  int len;
  int seq;  // per-(src, dst, tag) sequence number, for FIFO checking
};

std::vector<PlannedMessage> make_schedule(std::uint64_t seed, int nranks,
                                          int nmessages) {
  Rng rng(seed);
  std::vector<PlannedMessage> plan;
  plan.reserve(nmessages);
  std::map<std::tuple<int, int, int>, int> seq;
  for (int m = 0; m < nmessages; ++m) {
    PlannedMessage msg;
    msg.src = static_cast<int>(rng.next_below(nranks));
    msg.dst = static_cast<int>(rng.next_below(nranks - 1));
    if (msg.dst >= msg.src) msg.dst++;  // parx forbids self-sends
    msg.tag = static_cast<int>(rng.next_below(7));
    msg.len = static_cast<int>(rng.next_below(2048));
    msg.seq = seq[{msg.src, msg.dst, msg.tag}]++;
    plan.push_back(msg);
  }
  return plan;
}

/// Payload bytes are a pure function of the message identity, so any
/// corruption or cross-wiring is detected at the receiver.
std::vector<std::int32_t> payload_of(const PlannedMessage& m) {
  Rng rng(0x9E1D ^ (static_cast<std::uint64_t>(m.src) << 40) ^
          (static_cast<std::uint64_t>(m.dst) << 28) ^
          (static_cast<std::uint64_t>(m.tag) << 20) ^
          static_cast<std::uint64_t>(m.seq));
  std::vector<std::int32_t> data(static_cast<std::size_t>(m.len));
  for (auto& v : data) v = static_cast<std::int32_t>(rng.next_u64());
  return data;
}

TEST(ParxStress, RandomizedTrafficAllRankCounts) {
  for (int nranks : {2, 3, 4, 8, 16}) {
    const int nmessages = 40 * nranks;
    const auto plan = make_schedule(0xCAFE + nranks, nranks, nmessages);
    Runtime::run(nranks, [&](Comm& comm) {
      const int me = comm.rank();
      // Send everything I originate (buffered, never blocks)...
      for (const PlannedMessage& m : plan) {
        if (m.src == me) comm.send(m.dst, m.tag, payload_of(m));
      }
      // ...then receive everything addressed to me, in plan order. parx
      // guarantees FIFO per (src, tag), and the plan's `seq` encodes the
      // expected order, so the payload check also proves FIFO delivery.
      for (const PlannedMessage& m : plan) {
        if (m.dst != me) continue;
        const auto got = comm.recv<std::int32_t>(m.src, m.tag);
        const auto want = payload_of(m);
        ASSERT_EQ(got.size(), want.size())
            << "nranks=" << nranks << " src=" << m.src << " tag=" << m.tag;
        ASSERT_EQ(std::memcmp(got.data(), want.data(),
                              want.size() * sizeof(std::int32_t)),
                  0)
            << "payload corrupted: nranks=" << nranks << " src=" << m.src
            << " dst=" << m.dst << " tag=" << m.tag << " seq=" << m.seq;
      }
      comm.barrier();
    });
  }
}

TEST(ParxStress, CollectivesMatchSerialReference) {
  for (int nranks : {2, 3, 5, 8, 16}) {
    // Serial references computed up front.
    std::vector<std::vector<double>> contrib(nranks);
    for (int r = 0; r < nranks; ++r) {
      Rng rng(0xA11 + r);
      contrib[r].resize(17);
      for (double& v : contrib[r]) v = 2 * rng.next_real() - 1;
    }
    std::vector<double> ref_min = contrib[0], ref_max = contrib[0];
    for (int r = 1; r < nranks; ++r) {
      for (std::size_t i = 0; i < contrib[r].size(); ++i) {
        ref_min[i] = std::min(ref_min[i], contrib[r][i]);
        ref_max[i] = std::max(ref_max[i], contrib[r][i]);
      }
    }
    std::vector<std::int64_t> int_sum(17, 0);
    for (int r = 0; r < nranks; ++r) {
      for (std::size_t i = 0; i < int_sum.size(); ++i) {
        int_sum[i] += static_cast<std::int64_t>(100 * (r + 1)) + i;
      }
    }

    Runtime::run(nranks, [&](Comm& comm) {
      const int me = comm.rank();

      // min/max are order-insensitive: exact equality required.
      const auto got_min = comm.allreduce(contrib[me], Comm::ReduceOp::kMin);
      const auto got_max = comm.allreduce(contrib[me], Comm::ReduceOp::kMax);
      ASSERT_EQ(got_min, ref_min) << "nranks=" << nranks;
      ASSERT_EQ(got_max, ref_max) << "nranks=" << nranks;

      // Integer sums are exact under any combination order.
      std::vector<std::int64_t> mine(17);
      for (std::size_t i = 0; i < mine.size(); ++i) {
        mine[i] = static_cast<std::int64_t>(100 * (me + 1)) + i;
      }
      ASSERT_EQ(comm.allreduce(mine, Comm::ReduceOp::kSum), int_sum);

      // Double sums: tolerance for tree-order rounding.
      const auto got_sum = comm.allreduce(contrib[me], Comm::ReduceOp::kSum);
      for (std::size_t i = 0; i < got_sum.size(); ++i) {
        double want = 0;
        for (int r = 0; r < nranks; ++r) want += contrib[r][i];
        ASSERT_NEAR(got_sum[i], want, 1e-12 * nranks);
      }

      // bcast from every root.
      for (int root = 0; root < nranks; ++root) {
        std::vector<std::int32_t> data;
        if (me == root) {
          data.resize(64 + root);
          for (std::size_t i = 0; i < data.size(); ++i) {
            data[i] = static_cast<std::int32_t>(root * 1000 + i);
          }
        }
        data = comm.bcast(std::move(data), root);
        ASSERT_EQ(data.size(), static_cast<std::size_t>(64 + root));
        for (std::size_t i = 0; i < data.size(); ++i) {
          ASSERT_EQ(data[i], static_cast<std::int32_t>(root * 1000 + i));
        }
      }

      // allgatherv with rank-dependent sizes.
      std::vector<std::int32_t> gmine(static_cast<std::size_t>(me) + 1,
                                      me * 7);
      const auto all = comm.allgatherv(gmine);
      ASSERT_EQ(static_cast<int>(all.size()), nranks);
      for (int r = 0; r < nranks; ++r) {
        ASSERT_EQ(all[r].size(), static_cast<std::size_t>(r) + 1);
        for (auto v : all[r]) ASSERT_EQ(v, r * 7);
      }

      // alltoallv: sendbufs[r] = f(me, r); received[r] must be f(r, me).
      std::vector<std::vector<std::int32_t>> sendbufs(nranks);
      for (int r = 0; r < nranks; ++r) {
        sendbufs[r].assign(static_cast<std::size_t>((me + r) % 5 + 1),
                           me * 100 + r);
      }
      const auto recvbufs = comm.alltoallv(sendbufs);
      for (int r = 0; r < nranks; ++r) {
        ASSERT_EQ(recvbufs[r].size(),
                  static_cast<std::size_t>((r + me) % 5 + 1));
        for (auto v : recvbufs[r]) ASSERT_EQ(v, r * 100 + me);
      }

      comm.barrier();
    });
  }
}

/// Rank threads and kernel threads at the same time: each rank drives the
/// shared thread pool with its own SpMV/dot stream while exchanging
/// results — composition must neither deadlock nor corrupt data. The
/// per-rank result is compared bitwise against the same computation done
/// serially before the SPMD region.
TEST(ParxStress, KernelThreadsComposeWithRankThreads) {
  constexpr int kRanks = 4;
  constexpr idx kN = 8000;

  auto rank_matrix = [&](int r) {
    Rng rng(0x777 + r);
    std::vector<la::Triplet> trip;
    for (idx i = 0; i < kN; ++i) {
      trip.push_back({i, i, 4.0 + rng.next_real()});
      for (int k = 0; k < 4; ++k) {
        trip.push_back({i, static_cast<idx>(rng.next_below(kN)),
                        rng.next_real() - 0.5});
      }
    }
    return la::Csr::from_triplets(kN, kN, trip);
  };
  auto rank_vector = [&](int r) {
    Rng rng(0x888 + r);
    std::vector<real> x(static_cast<std::size_t>(kN));
    for (real& v : x) v = 2 * rng.next_real() - 1;
    return x;
  };

  // Serial per-rank references (computed with the default thread count).
  std::vector<std::vector<real>> ref_y(kRanks);
  std::vector<real> ref_dot(kRanks);
  for (int r = 0; r < kRanks; ++r) {
    const la::Csr a = rank_matrix(r);
    const std::vector<real> x = rank_vector(r);
    ref_y[r].resize(static_cast<std::size_t>(kN));
    a.spmv(x, ref_y[r]);
    ref_dot[r] = la::dot(x, ref_y[r]);
  }

  common::set_kernel_threads(4);  // oversubscribed on purpose: 4 ranks x 4
  Runtime::run(kRanks, [&](Comm& comm) {
    const int me = comm.rank();
    const la::Csr a = rank_matrix(me);
    const std::vector<real> x = rank_vector(me);
    std::vector<real> y(static_cast<std::size_t>(kN));
    for (int iter = 0; iter < 5; ++iter) {
      a.spmv(x, y);
      ASSERT_EQ(std::memcmp(y.data(), ref_y[me].data(),
                            y.size() * sizeof(real)),
                0)
          << "rank " << me << " iter " << iter
          << ": threaded SpMV result corrupted under parx";
      const real d = la::dot(x, y);
      ASSERT_EQ(std::memcmp(&d, &ref_dot[me], sizeof(real)), 0)
          << "rank " << me << " iter " << iter;
      // Mix in collectives between kernel bursts.
      const double total = comm.allreduce_sum(d);
      double want = 0;
      for (int r = 0; r < kRanks; ++r) want += ref_dot[r];
      ASSERT_NEAR(total, want, 1e-9 * (1 + std::abs(want)));
      comm.barrier();
    }
  });
  common::set_kernel_threads(0);
}

}  // namespace
}  // namespace prom::parx
