// The multigrid hierarchy (Prometheus + Epimetheus of Figure 8): applies
// coarsen::coarsen_level recursively to build grids and restriction
// operators, forms the Galerkin coarse operators A_{l+1} = R A_l R^T (§3),
// and equips each level with a smoother and the coarsest with a redundant
// dense factorization.
#pragma once

#include <memory>
#include <vector>

#include "coarsen/coarsen.h"
#include "common/config.h"
#include "fem/assembly.h"
#include "fem/matrix_free.h"
#include "fem/scalar.h"
#include "la/bsr.h"
#include "la/csr.h"
#include "la/dense.h"
#include "la/smoothers.h"
#include "la/sparse_chol.h"
#include "mesh/mesh.h"
#include "mesh/refine.h"

namespace prom::mg {

enum class SmootherKind : std::uint8_t {
  kJacobi,
  kSymGaussSeidel,
  kBlockJacobi,
  kChebyshev,
};

/// Storage format the solve phase applies operators in. kCsr is the
/// scalar baseline (PETSc AIJ); kBsr3 re-blocks every level into dense
/// 3x3 node blocks (PETSc BAIJ, what the paper ran on); kMf applies the
/// finest level matrix-free from batched element data (fem/matrix_free.h)
/// while every coarse level stays assembled Galerkin. All three produce
/// the same residual history to rounding: the blocked SpMV preserves the
/// scalar accumulation order exactly (la/bsr.h), the element apply to
/// reassociation rounding (~1e-12).
enum class MatrixFormat : std::uint8_t { kCsr, kBsr3, kMf };

/// Reads the PROM_MATRIX environment switch ("csr" | "bsr3" | "mf"; unset
/// or empty means kCsr). Fails fast on an unknown value.
MatrixFormat matrix_format_from_env();

/// Reads PROM_MIN_ROWS_PER_RANK (the coarse-level rank-agglomeration
/// threshold; unset, empty, or 0 disables agglomeration). Fails fast on
/// a negative or non-numeric value.
idx agglom_min_rows_from_env();

/// kDense / kSparseCholesky factor symmetric operators (LDL^T /
/// Cholesky); kDenseLu is the general-matrix option required by the
/// non-symmetric scalar classes (SUPG advection–diffusion), where the
/// Galerkin coarse operators are non-symmetric too.
enum class CoarseSolverKind : std::uint8_t { kDense, kSparseCholesky, kDenseLu };

struct MgOptions {
  int max_levels = 12;
  /// Stop coarsening when a level has at most this many free dofs (it is
  /// then solved directly; its size "remains constant as the problem size
  /// increases and is thus not a hindrance to scalability", §5).
  idx coarsest_max_dofs = 700;
  /// Abort coarsening if the MIS keeps more than this fraction of vertices.
  real min_coarsen_ratio = 0.75;

  coarsen::CoarsenOptions coarsen;

  SmootherKind smoother = SmootherKind::kBlockJacobi;
  real omega = 0.6;               ///< damping for Jacobi/block Jacobi
  idx bj_blocks_per_1000 = 6;     ///< the paper's block density (§7.2)
  int cheby_degree = 3;           ///< polynomial degree for kChebyshev
  int pre_smooth = 1;             ///< paper: one pre-smoothing step
  int post_smooth = 1;            ///< paper: one post-smoothing step

  /// Coarsest-level factorization; sparse Cholesky (with RCM) keeps the
  /// redundant coarse solve cheap when coarsest_max_dofs is raised.
  CoarseSolverKind coarse_solver = CoarseSolverKind::kDense;

  /// Coarse-level rank agglomeration (distributed solves only): a level
  /// whose global row count leaves fewer than this many rows per rank is
  /// repartitioned onto a halved active-rank subset until each active
  /// rank holds at least this many rows (or one rank remains). 0
  /// disables agglomeration — every level keeps every rank, the seed
  /// behavior. Seeded from PROM_MIN_ROWS_PER_RANK.
  idx agglom_min_rows = agglom_min_rows_from_env();
};

struct MgLevel {
  la::Csr a;  ///< operator on this level's free dofs
  /// Restriction from the next-finer level's free dofs to this level's
  /// (empty on level 0). Prolongation is r^T.
  la::Csr r;
  /// Node-block (BAIJ) view of `a`, built by Hierarchy::enable_bsr();
  /// null in the default scalar configuration.
  std::unique_ptr<la::BsrOperator> a_bsr;
  /// Matrix-free element view of `a`, built by Hierarchy::enable_mf();
  /// level 0 only (coarse levels have no elements to integrate over).
  std::unique_ptr<fem::MatrixFreeOperator> a_mf;
  std::unique_ptr<la::Smoother> smoother;        // all but coarsest
  std::unique_ptr<la::DenseLdlt> direct;         // coarsest (dense mode)
  std::unique_ptr<la::DenseLu> direct_lu;        // coarsest (dense LU mode)
  std::unique_ptr<la::SparseCholesky> sparse_direct;  // coarsest (sparse)

  // Grid diagnostics (Figure 7 / DESIGN.md hierarchy stats).
  idx num_vertices = 0;
  std::vector<idx> free_dofs;       ///< vertex-local dof ids (3*v+c), free
  std::vector<idx> selected_from_fine;  ///< fine-level vertex of each vertex
  idx lost_vertices = 0;
  nnz_t graph_edges_removed = 0;

  /// Local smoothing (adaptive refinement levels only): when non-empty,
  /// smoothing on this level updates only these free-dof rows — the dofs
  /// of the region the next refinement round subdivided — leaving the
  /// rest of the level to the coarser grids (arXiv:1904.03317). Empty
  /// means smooth everywhere (every non-refinement level).
  std::vector<idx> smooth_rows;
};

class Hierarchy {
 public:
  /// Builds grids + operators from the fine mesh, its constraints, and the
  /// assembled fine matrix on the free dofs.
  static Hierarchy build(const mesh::Mesh& mesh, const fem::DofMap& dofmap,
                         la::Csr a_fine, const MgOptions& opts = {});

  /// Grids-only build (the "mesh setup" phase alone): coarse grids and
  /// restriction operators, but no Galerkin coarse operators, smoothers,
  /// or coarse factorization — those are the *matrix setup* phase, which
  /// the distributed path (dla::DistHierarchy) performs row-distributed.
  /// The fine matrix is kept (it seeds the distributed chain).
  static Hierarchy build_grids(const mesh::Mesh& mesh,
                               const fem::DofMap& dofmap, la::Csr a_fine,
                               const MgOptions& opts = {});

  /// Scalar (block-size-1) counterpart of build: same MIS coarsening on
  /// the vertex graph, same Galerkin chain, but one dof per vertex —
  /// restriction rows are the bare vertex weights (no Kronecker I_3).
  static Hierarchy build_scalar(const mesh::Mesh& mesh,
                                const fem::ScalarDofMap& dofmap,
                                la::Csr a_fine, const MgOptions& opts = {});

  /// Grids-only scalar build (see build_grids).
  static Hierarchy build_grids_scalar(const mesh::Mesh& mesh,
                                      const fem::ScalarDofMap& dofmap,
                                      la::Csr a_fine,
                                      const MgOptions& opts = {});

  /// Grids for an adaptively refined mesh family (mesh::refine_local):
  /// `meshes[0]` is the unrefined tet mesh, `meshes.back()` the finest;
  /// `rounds[r]` records the bisections taking meshes[r] to meshes[r+1];
  /// `dofmaps[r]` holds meshes[r]'s constraints (finalized). The levels
  /// are the refinement meshes finest-first — prolongation interpolates
  /// midpoints from their bisected-edge endpoints, smoothing on each
  /// refinement level is restricted to the region that round subdivided
  /// (MgLevel::smooth_rows) — followed by the usual MIS/Delaunay chain
  /// below meshes[0]. `a_fine` is the assembled operator on the finest
  /// mesh's free dofs.
  static Hierarchy build_grids_refined(
      const std::vector<const mesh::Mesh*>& meshes,
      const std::vector<const fem::DofMap*>& dofmaps,
      const std::vector<mesh::RefineResult>& rounds, la::Csr a_fine,
      const MgOptions& opts = {});

  /// Scalar (block-size-1) counterpart of build_grids_refined.
  static Hierarchy build_grids_refined_scalar(
      const std::vector<const mesh::Mesh*>& meshes,
      const std::vector<const fem::ScalarDofMap*>& dofmaps,
      const std::vector<mesh::RefineResult>& rounds, la::Csr a_fine,
      const MgOptions& opts = {});

  /// build_grids_refined + Galerkin operators/smoothers (serial solves).
  static Hierarchy build_refined(
      const std::vector<const mesh::Mesh*>& meshes,
      const std::vector<const fem::DofMap*>& dofmaps,
      const std::vector<mesh::RefineResult>& rounds, la::Csr a_fine,
      const MgOptions& opts = {});

  /// build_grids_refined_scalar + operators (serial scalar solves).
  static Hierarchy build_refined_scalar(
      const std::vector<const mesh::Mesh*>& meshes,
      const std::vector<const fem::ScalarDofMap*>& dofmaps,
      const std::vector<mesh::RefineResult>& rounds, la::Csr a_fine,
      const MgOptions& opts = {});

  /// Builds a hierarchy from an explicit operator/restriction chain
  /// (restrictions[l] maps level l free dofs -> level l+1); used by the
  /// algebraic (smoothed aggregation) coarsening, which produces its own
  /// restriction operators.
  static Hierarchy from_operator_chain(la::Csr a_fine,
                                       std::vector<la::Csr> restrictions,
                                       const MgOptions& opts);

  /// Replaces the fine operator (new Newton tangent) and recomputes the
  /// Galerkin chain, smoothers and coarse factorization on the *same*
  /// grids — the paper's "matrix setup" phase, paid once per Newton step.
  void update_fine_matrix(la::Csr a_fine);

  /// Replaces the fine operator only, leaving serial matrix setup to the
  /// distributed path (Newton with dist_ranks > 0 rebuilds the Galerkin
  /// chain row-distributed from this matrix each iteration).
  void set_fine_matrix(la::Csr a_fine);

  /// Re-blocks every level's operator into the padded node-block space
  /// (MgLevel::a_bsr) so the solve phase can run in MatrixFormat::kBsr3.
  /// Call after operators exist (build / update_fine_matrix); idempotent.
  void enable_bsr();

  /// Builds the fine level's matrix-free element view (MgLevel::a_mf) so
  /// the solve phase can run in MatrixFormat::kMf. Valid only for the
  /// unloaded-state tangent (what assemble_linear_system produced — see
  /// fem/matrix_free.h); the mesh/materials/dofmap must be the ones the
  /// fine matrix was assembled from. Idempotent (rebuilds the view).
  void enable_mf(const mesh::Mesh& mesh,
                 std::span<const fem::Material> materials,
                 const fem::DofMap& dofmap, bool bbar = true);

  int num_levels() const { return static_cast<int>(levels_.size()); }
  const MgLevel& level(int l) const { return levels_[l]; }
  const MgOptions& options() const { return opts_; }

  /// Dofs per vertex of the operators in this hierarchy: 3 for the
  /// elasticity stack, 1 for the scalar equation classes. The distributed
  /// build (dla::DistHierarchy) derives vertex ownership from free dofs
  /// through this.
  int block_size() const { return block_size_; }

  /// One-line-per-level summary (vertices, dofs, nnz) for logs/benches.
  std::string describe() const;

 private:
  static Hierarchy build_grids_any(const mesh::Mesh& mesh, int ncomp,
                                   std::vector<char> dof_free,
                                   std::vector<idx> fine_free, la::Csr a_fine,
                                   const MgOptions& opts);
  static Hierarchy build_grids_refined_any(
      const std::vector<const mesh::Mesh*>& meshes,
      const std::vector<mesh::RefineResult>& rounds,
      std::vector<std::vector<idx>> level_free, int ncomp, la::Csr a_fine,
      const MgOptions& opts);
  void build_operators();

  MgOptions opts_;
  std::vector<MgLevel> levels_;
  int block_size_ = 3;
};

}  // namespace prom::mg
