// Property tests for the scalar (block-size-1) assembly path: symmetry of
// pure-diffusion stiffness, the constant nullspace under pure-Neumann BCs,
// SPD vs deliberate non-symmetry, bitwise kernel-thread determinism, and
// agreement of the block-size-1 Galerkin chain with an explicitly formed
// R A R^T triple product.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "app/driver.h"
#include "coarsen/restriction.h"
#include "common/parallel.h"
#include "fem/scalar.h"
#include "la/csr.h"
#include "la/dense.h"
#include "la/krylov.h"
#include "mesh/generate.h"
#include "mg/hierarchy.h"

namespace prom {
namespace {

fem::ScalarCoefficients diffusion_only() {
  fem::ScalarCoefficients c;
  c.diffusion = [](idx, const Vec3& x) {
    // Smoothly varying anisotropic but symmetric tensor.
    Mat3 k = (1.0 + 0.5 * x.x) * Mat3::identity();
    k(0, 1) = k(1, 0) = 0.1 * x.y;
    return k;
  };
  return c;
}

fem::ScalarCoefficients advdiff_coeffs() {
  fem::ScalarCoefficients c;
  c.diffusion = [](idx, const Vec3&) { return 0.05 * Mat3::identity(); };
  c.velocity = [](idx, const Vec3&) { return Vec3{1.0, 0.5, 0.25}; };
  c.source = [](idx, const Vec3&) { return real{1}; };
  c.supg = true;
  return c;
}

/// All-Dirichlet dofmap (value 0 on the whole boundary of the unit box).
fem::ScalarDofMap dirichlet_map(const mesh::Mesh& mesh) {
  fem::ScalarDofMap dm(mesh.num_vertices());
  const real eps = 1e-9;
  dm.fix_all(mesh.vertices_where([&](const Vec3& x) {
    return x.x < eps || x.x > 1 - eps || x.y < eps || x.y > 1 - eps ||
           x.z < eps || x.z > 1 - eps;
  }),
             0);
  dm.finalize();
  return dm;
}

real max_abs(const la::Csr& a) {
  real m = 0;
  for (real v : a.vals) m = std::max(m, std::fabs(v));
  return m;
}

/// max |a_ij - a_ji| over all entries.
real asymmetry(const la::Csr& a) {
  const la::Csr at = a.transposed();
  real m = 0;
  for (idx i = 0; i < a.nrows; ++i) {
    // Same sparsity pattern either way (FEM graphs are structurally
    // symmetric), and from_triplets sorts columns, so rows align.
    EXPECT_EQ(a.rowptr[i + 1] - a.rowptr[i],
              at.rowptr[i + 1] - at.rowptr[i]);
    for (nnz_t k = a.rowptr[i]; k < a.rowptr[i + 1]; ++k) {
      EXPECT_EQ(a.colidx[k], at.colidx[k]);
      m = std::max(m, std::fabs(a.vals[k] - at.vals[k]));
    }
  }
  return m;
}

TEST(ScalarAssemblyProp, PureDiffusionStiffnessIsSymmetric) {
  const mesh::Mesh mesh = mesh::box_hex(5, 5, 5, {0, 0, 0}, {1, 1, 1});
  const fem::ScalarDofMap dm = dirichlet_map(mesh);
  const fem::ScalarAssembly a =
      fem::assemble_scalar(mesh, dm, diffusion_only());
  ASSERT_GT(a.stiffness.nrows, 0);
  EXPECT_LE(asymmetry(a.stiffness), 1e-14 * max_abs(a.stiffness));
}

TEST(ScalarAssemblyProp, PureNeumannDiffusionHasConstantNullspace) {
  // No constraints, no advection/reaction: K * ones == 0 (constants are in
  // the kernel — every row sums to zero up to quadrature rounding).
  const mesh::Mesh mesh = mesh::box_hex(4, 4, 4, {0, 0, 0}, {1, 1, 1});
  fem::ScalarDofMap dm(mesh.num_vertices());  // all free
  const fem::ScalarAssembly a =
      fem::assemble_scalar(mesh, dm, diffusion_only());
  ASSERT_EQ(a.stiffness.nrows, mesh.num_vertices());
  std::vector<real> ones(static_cast<std::size_t>(a.stiffness.nrows), 1.0);
  std::vector<real> y(ones.size());
  a.stiffness.spmv(ones, y);
  const real scale = max_abs(a.stiffness);
  for (real v : y) EXPECT_NEAR(v, 0.0, 1e-13 * scale);
}

TEST(ScalarAssemblyProp, DiffusionIsSpdAdvectionIsNot) {
  const mesh::Mesh mesh = mesh::box_hex(4, 4, 4, {0, 0, 0}, {1, 1, 1});
  const fem::ScalarDofMap dm = dirichlet_map(mesh);

  // Dirichlet diffusion: positive definite — LDL^T succeeds with all
  // pivots positive (DenseLdlt rejects non-positive pivots by design).
  const fem::ScalarAssembly diff =
      fem::assemble_scalar(mesh, dm, diffusion_only());
  la::DenseMatrix d(diff.stiffness.nrows, diff.stiffness.ncols);
  for (idx i = 0; i < diff.stiffness.nrows; ++i) {
    for (nnz_t k = diff.stiffness.rowptr[i]; k < diff.stiffness.rowptr[i + 1];
         ++k) {
      d(i, diff.stiffness.colidx[k]) = diff.stiffness.vals[k];
    }
  }
  EXPECT_TRUE(la::DenseLdlt(d).ok());

  // The advective term breaks symmetry by a detectable margin.
  const fem::ScalarAssembly ad =
      fem::assemble_scalar(mesh, dm, advdiff_coeffs());
  EXPECT_GE(asymmetry(ad.stiffness), 1e-3 * max_abs(ad.stiffness));
}

TEST(ScalarAssemblyProp, BitwiseDeterministicAcrossKernelThreads) {
  const mesh::Mesh mesh = mesh::box_hex(6, 6, 6, {0, 0, 0}, {1, 1, 1});
  const fem::ScalarDofMap dm = dirichlet_map(mesh);
  const fem::ScalarCoefficients coeffs = advdiff_coeffs();

  common::set_kernel_threads(1);
  const fem::ScalarSystem ref = fem::assemble_scalar_system(mesh, dm, coeffs);
  for (int threads : {2, 8}) {
    common::set_kernel_threads(threads);
    const fem::ScalarSystem got =
        fem::assemble_scalar_system(mesh, dm, coeffs);
    ASSERT_EQ(got.stiffness.vals.size(), ref.stiffness.vals.size())
        << threads << " threads";
    EXPECT_EQ(got.stiffness.rowptr, ref.stiffness.rowptr);
    EXPECT_EQ(got.stiffness.colidx, ref.stiffness.colidx);
    for (std::size_t k = 0; k < ref.stiffness.vals.size(); ++k) {
      ASSERT_EQ(got.stiffness.vals[k], ref.stiffness.vals[k])
          << threads << " threads, nnz " << k;
    }
    ASSERT_EQ(got.rhs.size(), ref.rhs.size());
    for (std::size_t i = 0; i < ref.rhs.size(); ++i) {
      ASSERT_EQ(got.rhs[i], ref.rhs[i]) << threads << " threads, row " << i;
    }
  }
  common::set_kernel_threads(0);  // restore the default policy
}

TEST(ScalarGalerkin, ExpandRestrictionAtNcompOneIsIdentityExpansion) {
  // With one dof per vertex and every dof free, the dof expansion must
  // return the vertex-weight restriction unchanged.
  const mesh::Mesh mesh = mesh::box_hex(4, 4, 4, {0, 0, 0}, {1, 1, 1});
  std::vector<idx> selected;
  for (idx v = 0; v < mesh.num_vertices(); v += 3) selected.push_back(v);
  const graph::Graph g = mesh.vertex_graph();
  const coarsen::RestrictionResult rr =
      coarsen::build_restriction(mesh.coords(), selected, {}, &g);

  std::vector<idx> fine_free(static_cast<std::size_t>(mesh.num_vertices()));
  for (idx v = 0; v < mesh.num_vertices(); ++v) fine_free[v] = v;
  std::vector<idx> coarse_free(selected.size());
  for (std::size_t c = 0; c < selected.size(); ++c) {
    coarse_free[c] = static_cast<idx>(c);
  }
  const la::Csr r = coarsen::expand_restriction_to_dofs(
      rr.r_vertex, fine_free, coarse_free, /*ncomp=*/1);
  EXPECT_EQ(r.nrows, rr.r_vertex.nrows);
  EXPECT_EQ(r.ncols, rr.r_vertex.ncols);
  EXPECT_EQ(r.rowptr, rr.r_vertex.rowptr);
  EXPECT_EQ(r.colidx, rr.r_vertex.colidx);
  EXPECT_EQ(r.vals, rr.r_vertex.vals);
}

TEST(ScalarGalerkin, CoarseOperatorMatchesExplicitTripleProduct) {
  // The scalar hierarchy's Galerkin operator must agree with the triple
  // product assembled the long way: spgemm(spgemm(R, A), R^T).
  const app::ModelProblem p = app::make_poisson_het_problem(6, 1e3);
  fem::ScalarSystem sys =
      fem::assemble_scalar_system(p.mesh, p.scalar_dofmap, p.coeffs);
  mg::MgOptions mo;
  mo.coarsest_max_dofs = 20;
  const mg::Hierarchy h = mg::Hierarchy::build_scalar(
      p.mesh, p.scalar_dofmap, std::move(sys.stiffness), mo);
  ASSERT_GE(h.num_levels(), 2);
  EXPECT_EQ(h.block_size(), 1);

  for (int l = 1; l < h.num_levels(); ++l) {
    const la::Csr& r = h.level(l).r;
    const la::Csr& a_fine = h.level(l - 1).a;
    const la::Csr expl = la::spgemm(la::spgemm(r, a_fine), r.transposed());
    const la::Csr& got = h.level(l).a;
    ASSERT_EQ(got.nrows, expl.nrows) << "level " << l;
    const real scale = max_abs(expl);
    // Entry-by-entry through dense probes of each row, tolerant of
    // explicit zeros from differing patterns.
    std::vector<real> row_e(static_cast<std::size_t>(expl.ncols));
    std::vector<real> row_g(static_cast<std::size_t>(expl.ncols));
    for (idx i = 0; i < expl.nrows; ++i) {
      std::fill(row_e.begin(), row_e.end(), 0.0);
      std::fill(row_g.begin(), row_g.end(), 0.0);
      for (nnz_t k = expl.rowptr[i]; k < expl.rowptr[i + 1]; ++k) {
        row_e[expl.colidx[k]] = expl.vals[k];
      }
      for (nnz_t k = got.rowptr[i]; k < got.rowptr[i + 1]; ++k) {
        row_g[got.colidx[k]] = got.vals[k];
      }
      for (idx j = 0; j < expl.ncols; ++j) {
        ASSERT_NEAR(row_g[j], row_e[j], 1e-12 * scale)
            << "level " << l << " entry (" << i << "," << j << ")";
      }
    }
  }
}

}  // namespace
}  // namespace prom
