#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/flops.h"

namespace prom::common {
namespace {

std::atomic<int> g_thread_override{0};
std::atomic<int> g_active_ranks{1};

/// Hard cap on kernel threads; a backstop against absurd PROM_THREADS
/// values, far above any machine this targets.
constexpr int kMaxKernelThreads = 64;

int env_threads() {
  static const int v = [] {
    const char* s = std::getenv("PROM_THREADS");
    return (s && *s) ? std::atoi(s) : 0;
  }();
  return v;
}

/// True while the current thread is executing chunks of some region —
/// nested parallel calls (and pool workers) run inline instead of
/// re-entering the pool.
thread_local bool t_in_region = false;

/// One parallel region in flight. Lives on the submitting thread's stack;
/// workers must finish all bookkeeping on a chunk (flop harvest included)
/// *before* bumping `done`, because the submitter returns — and the
/// region dies — once `done == nchunks`.
struct Region {
  const std::function<void(idx, idx)>* fn = nullptr;
  idx begin = 0;
  idx end = 0;
  idx grain = 1;
  idx nchunks = 0;
  std::atomic<idx> next{0};
  std::atomic<idx> done{0};
  std::atomic<int> helper_slots{0};
  std::atomic<int> active_workers{0};
  std::atomic<std::int64_t> worker_flops{0};
};

class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  /// Tries to run the region on the pool (caller participates). Returns
  /// false — without touching `fn` — when another thread owns the pool;
  /// the caller then falls back to the inline serial path.
  bool try_run(idx begin, idx end, idx grain,
               const std::function<void(idx, idx)>& fn, int nthreads) {
    std::unique_lock<std::mutex> submit(submit_mutex_, std::try_to_lock);
    if (!submit.owns_lock()) return false;

    Region region;
    region.fn = &fn;
    region.begin = begin;
    region.end = end;
    region.grain = grain;
    region.nchunks = chunk_count(begin, end, grain);
    region.helper_slots.store(nthreads - 1, std::memory_order_relaxed);

    ensure_workers(nthreads - 1);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      region_ = &region;
      ++epoch_;
    }
    work_cv_.notify_all();

    t_in_region = true;
    execute_chunks(region, /*harvest_flops=*/false);
    t_in_region = false;

    {
      // Wait until every chunk ran AND every worker left the region —
      // `region` lives on this stack frame, so no worker may still hold a
      // pointer to it when we return.
      std::unique_lock<std::mutex> lock(mutex_);
      done_cv_.wait(lock, [&] {
        return region.done.load(std::memory_order_acquire) ==
                   region.nchunks &&
               region.active_workers.load(std::memory_order_acquire) == 0;
      });
      region_ = nullptr;
    }
    // Credit the flops workers performed on our behalf to this thread, so
    // per-rank flop accounting (§6) is independent of the thread count.
    count_flops(region.worker_flops.load(std::memory_order_relaxed));
    return true;
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

 private:
  /// Claims chunks until none remain. Harvesting moves worker-side flops
  /// into the region *before* the chunk is marked done (see Region).
  void execute_chunks(Region& region, bool harvest_flops) {
    for (;;) {
      const idx c = region.next.fetch_add(1, std::memory_order_relaxed);
      if (c >= region.nchunks) return;
      const idx b = region.begin + c * region.grain;
      const std::int64_t f0 = harvest_flops ? thread_flops() : 0;
      (*region.fn)(b, std::min<idx>(b + region.grain, region.end));
      if (harvest_flops) {
        region.worker_flops.fetch_add(thread_flops() - f0,
                                      std::memory_order_relaxed);
      }
      region.done.fetch_add(1, std::memory_order_acq_rel);
    }
  }

  void ensure_workers(int want) {
    want = std::min(want, kMaxKernelThreads - 1);
    std::lock_guard<std::mutex> lock(mutex_);
    while (static_cast<int>(workers_.size()) < want) {
      workers_.emplace_back([this] { worker_main(); });
    }
  }

  void worker_main() {
    std::uint64_t seen = 0;
    for (;;) {
      Region* region = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_cv_.wait(lock, [&] {
          return stop_ || (epoch_ != seen && region_ != nullptr);
        });
        if (stop_) return;
        seen = epoch_;
        region = region_;
        if (region->helper_slots.fetch_sub(1, std::memory_order_relaxed) <=
            0) {
          region->helper_slots.fetch_add(1, std::memory_order_relaxed);
          continue;  // region already has its configured thread count
        }
        region->active_workers.fetch_add(1, std::memory_order_acq_rel);
      }
      t_in_region = true;
      execute_chunks(*region, /*harvest_flops=*/true);
      t_in_region = false;
      region->active_workers.fetch_sub(1, std::memory_order_acq_rel);
      // The submitter may be blocked on (done && no active workers); wake
      // it. The empty critical section pairs with its predicate check.
      {
        std::lock_guard<std::mutex> lock(mutex_);
      }
      done_cv_.notify_all();
    }
  }

  std::mutex submit_mutex_;  // one region at a time; contenders run inline
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  Region* region_ = nullptr;
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
};

void run_inline(idx begin, idx end, idx grain,
                const std::function<void(idx, idx)>& fn) {
  // Same fixed chunk decomposition as the pool path — chunk boundaries are
  // part of the determinism contract, not a scheduling detail.
  for (idx b = begin; b < end; b += grain) {
    fn(b, std::min<idx>(b + grain, end));
  }
}

}  // namespace

int kernel_threads() {
  const int over = g_thread_override.load(std::memory_order_relaxed);
  if (over > 0) return std::min(over, kMaxKernelThreads);
  if (env_threads() > 0) return std::min(env_threads(), kMaxKernelThreads);
  const int hw = std::max(1u, std::thread::hardware_concurrency());
  const int ranks = std::max(1, g_active_ranks.load(std::memory_order_relaxed));
  return std::max(1, hw / ranks);
}

void set_kernel_threads(int n) {
  g_thread_override.store(n > 0 ? n : 0, std::memory_order_relaxed);
}

void set_active_ranks(int nranks) {
  g_active_ranks.store(std::max(1, nranks), std::memory_order_relaxed);
}

idx chunk_count(idx begin, idx end, idx grain) {
  PROM_CHECK(grain >= 1);
  if (end <= begin) return 0;
  return (end - begin + grain - 1) / grain;
}

void parallel_for(idx begin, idx end, idx grain,
                  const std::function<void(idx, idx)>& fn) {
  const idx nchunks = chunk_count(begin, end, grain);
  if (nchunks == 0) return;
  const int nthreads = kernel_threads();
  if (nthreads <= 1 || nchunks <= 1 || t_in_region) {
    run_inline(begin, end, grain, fn);
    return;
  }
  if (!Pool::instance().try_run(begin, end, grain, fn, nthreads)) {
    run_inline(begin, end, grain, fn);
  }
}

real parallel_reduce(idx begin, idx end, idx grain,
                     const std::function<real(idx, idx)>& partial) {
  const idx nchunks = chunk_count(begin, end, grain);
  if (nchunks == 0) return real{0};
  std::vector<real> partials(static_cast<std::size_t>(nchunks));
  parallel_for(0, nchunks, 1, [&](idx cb, idx ce) {
    for (idx c = cb; c < ce; ++c) {
      const idx b = begin + c * grain;
      partials[c] = partial(b, std::min<idx>(b + grain, end));
    }
  });
  // Deterministic balanced tree over chunk indices — the combination
  // order never depends on which thread computed which partial.
  for (idx s = 1; s < nchunks; s <<= 1) {
    for (idx i = 0; i + s < nchunks; i += 2 * s) {
      partials[i] += partials[i + s];
    }
  }
  return partials[0];
}

}  // namespace prom::common
