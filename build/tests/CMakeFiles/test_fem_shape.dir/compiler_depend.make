# Empty compiler generated dependencies file for test_fem_shape.
# This may be replaced when dependencies are built.
