file(REMOVE_RECURSE
  "libprom_la.a"
)
