// Matrix-setup rank sweep: the distributed Galerkin setup (Epimetheus,
// dla::DistHierarchy::build) on a fixed box problem at 1/2/4/8 virtual
// ranks. Reports wall time, the max-over-ranks flops spent in the R A R^T
// triple products (the quantity that must shrink as ranks grow now that
// setup is row-distributed), and the setup-phase communication volume.
// Emits BENCH_setup.json in the working directory so the perf trajectory
// tracks setup, not just solve kernels.
//
// Wall time and traffic come out of the obs tracer: each sweep's
// "phase.matrix_setup" spans are aggregated into report.json and the
// table is printed from the parsed file — there is no stopwatch here.
//
// Environment: PROM_BENCH_FULL=1 enlarges the problem; PROM_BENCH_SMOKE=1
// shrinks it (the CI smoke lane).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

#include "app/driver.h"
#include "dla/dist_mg.h"
#include "fem/assembly.h"
#include "mg/hierarchy.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "partition/rcb.h"
#include "parx/runtime.h"

using namespace prom;

int main() {
  const bool full = std::getenv("PROM_BENCH_FULL") != nullptr;
  const bool smoke = std::getenv("PROM_BENCH_SMOKE") != nullptr;
  const idx n = smoke ? 10 : (full ? 24 : 14);
  const app::ModelProblem problem = app::make_box_problem(n);
  fem::FeProblem fe(problem.mesh, problem.materials, problem.dofmap);
  fem::LinearSystem sys = fem::assemble_linear_system(fe);
  const idx unknowns = sys.stiffness.nrows;
  mg::MgOptions mo;
  const mg::Hierarchy grids = mg::Hierarchy::build_grids(
      problem.mesh, problem.dofmap, std::move(sys.stiffness), mo);

  struct Row {
    int ranks;
    double wall;
    std::int64_t max_galerkin_flops;
    std::int64_t bytes;
    std::int64_t messages;
  };
  std::vector<Row> rows;

  obs::Tracer& tracer = obs::Tracer::instance();
  const bool was_tracing = obs::tracing();
  tracer.set_enabled(true);

  std::printf("matrix setup (distributed R A R^T) rank sweep, %d unknowns, "
              "%d levels\n",
              unknowns, grids.num_levels());
  std::printf("%-6s | %-10s %-18s %-12s %-9s\n", "ranks", "setup (s)",
              "max galerkin Mflop", "sent MB", "messages");
  const std::vector<int> sweep = smoke ? std::vector<int>{1, 2, 4}
                                       : std::vector<int>{1, 2, 4, 8};
  for (const int p : sweep) {
    const std::vector<idx> owner =
        partition::rcb_partition(problem.mesh.coords(), p);
    std::vector<std::int64_t> flops(static_cast<std::size_t>(p), 0);
    const std::int64_t mark = obs::Tracer::now_ns();
    parx::Runtime::run(p, [&](parx::Comm& comm) {
      comm.barrier();
      const obs::Span span("phase.matrix_setup");
      const dla::DistHierarchy dist =
          dla::DistHierarchy::build(comm, grids, owner);
      comm.barrier();
      flops[comm.rank()] = dist.galerkin_flops();
    });
    obs::build_report(mark).write_json("report.json");
    const obs::Report rep = obs::Report::read_json("report.json");
    const obs::PhaseEntry* phase = rep.phase("matrix_setup");
    if (phase == nullptr) {
      std::fprintf(stderr, "report.json is missing phase matrix_setup\n");
      return 1;
    }
    Row row{p, phase->seconds(), 0, phase->bytes, phase->messages};
    for (int r = 0; r < p; ++r) {
      row.max_galerkin_flops =
          std::max(row.max_galerkin_flops, flops[static_cast<std::size_t>(r)]);
    }
    rows.push_back(row);
    std::printf("%-6d | %-10.3f %-18.1f %-12.2f %-9lld\n", row.ranks, row.wall,
                static_cast<double>(row.max_galerkin_flops) / 1e6,
                static_cast<double>(row.bytes) / 1e6,
                static_cast<long long>(row.messages));
  }
  // Per-level cycle-traffic table: the same problem at the sweep's largest
  // rank count, V-cycled with coarse-level agglomeration off vs on. The
  // mg.* cycle components of the obs report give messages/bytes per level;
  // the mg.active_ranks gauge shows where the rank set shrinks. This is
  // the table that must show the coarse-grid message count collapsing
  // (the latency bill of the coarse levels) while level 0 is untouched.
  const int pmax = sweep.back();
  const std::vector<idx> tr_owner =
      partition::rcb_partition(problem.mesh.coords(), pmax);
  struct LevelRow {
    int level;
    int active;
    std::int64_t messages;
    std::int64_t bytes;
  };
  struct TrafficRun {
    long long min_rows;
    std::vector<LevelRow> levels;
  };
  std::vector<TrafficRun> truns;
  static constexpr const char* kCycleComponents[] = {
      "mg.smooth", "mg.residual", "mg.restrict", "mg.prolong",
      "mg.coarse_solve"};
  constexpr int kCycles = 3;
  for (const idx min_rows : {idx{0}, idx{1000}}) {
    mg::MgOptions amo = mo;
    amo.agglom_min_rows = min_rows;
    fem::LinearSystem asys = fem::assemble_linear_system(fe);
    const mg::Hierarchy agrids = mg::Hierarchy::build_grids(
        problem.mesh, problem.dofmap, std::move(asys.stiffness), amo);
    const std::int64_t mark = obs::Tracer::now_ns();
    parx::Runtime::run(pmax, [&](parx::Comm& comm) {
      const dla::DistHierarchy dist =
          dla::DistHierarchy::build(comm, agrids, tr_owner);
      const idx nloc = dist.level(0).local_n();
      std::vector<real> b(static_cast<std::size_t>(nloc), 1.0);
      std::vector<real> x(static_cast<std::size_t>(nloc), 0.0);
      comm.barrier();
      for (int it = 0; it < kCycles; ++it) dist_vcycle(comm, dist, 0, b, x);
    });
    const obs::Report rep = obs::build_report(mark);
    TrafficRun run{static_cast<long long>(min_rows), {}};
    for (int l = 0; l < agrids.num_levels(); ++l) {
      LevelRow lr{l, pmax, 0, 0};
      const double active = rep.gauge("mg.active_ranks", l);
      if (active == active) lr.active = static_cast<int>(active);
      for (const char* name : kCycleComponents) {
        if (const obs::ComponentEntry* c = rep.component(name, l)) {
          lr.messages += c->messages;
          lr.bytes += c->bytes;
        }
      }
      run.levels.push_back(lr);
    }
    truns.push_back(std::move(run));
  }
  std::printf("\nper-level cycle traffic at %d ranks (%d V-cycles), "
              "agglomeration off vs on (min %lld rows/rank):\n",
              pmax, kCycles, truns[1].min_rows);
  std::printf("%-6s | %-21s | %-21s\n", "level", "off: act msgs KB",
              "on:  act msgs KB");
  for (std::size_t l = 0; l < truns[0].levels.size(); ++l) {
    const LevelRow& off = truns[0].levels[l];
    const LevelRow& on = truns[1].levels[l];
    std::printf("%-6d | %3d %7lld %9.1f | %3d %7lld %9.1f\n", off.level,
                off.active, static_cast<long long>(off.messages),
                static_cast<double>(off.bytes) / 1e3, on.active,
                static_cast<long long>(on.messages),
                static_cast<double>(on.bytes) / 1e3);
  }

  tracer.set_enabled(was_tracing);
  std::printf(
      "\nshape claim: the busiest rank's triple-product flops shrink as\n"
      "ranks grow (per-rank setup work scales with local rows); the\n"
      "communication volume is the price of the row-distributed product;\n"
      "agglomeration trades a one-time redistribution for coarse levels\n"
      "that stop paying per-cycle message latency.\n");

  std::FILE* json = std::fopen("BENCH_setup.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_setup.json\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"setup\",\n  \"unknowns\": %d,\n"
                     "  \"levels\": %d,\n  \"sweep\": [\n",
               unknowns, grids.num_levels());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(json,
                 "    {\"ranks\": %d, \"wall_setup_s\": %.6f, "
                 "\"max_rank_galerkin_flops\": %lld, \"setup_bytes\": %lld, "
                 "\"setup_messages\": %lld}%s\n",
                 r.ranks, r.wall, static_cast<long long>(r.max_galerkin_flops),
                 static_cast<long long>(r.bytes),
                 static_cast<long long>(r.messages),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n  \"cycle_traffic\": [\n");
  for (std::size_t t = 0; t < truns.size(); ++t) {
    const TrafficRun& run = truns[t];
    std::fprintf(json,
                 "    {\"min_rows_per_rank\": %lld, \"ranks\": %d, "
                 "\"vcycles\": %d, \"levels\": [\n",
                 run.min_rows, pmax, kCycles);
    for (std::size_t l = 0; l < run.levels.size(); ++l) {
      const LevelRow& lr = run.levels[l];
      std::fprintf(json,
                   "      {\"level\": %d, \"active_ranks\": %d, "
                   "\"messages\": %lld, \"bytes\": %lld}%s\n",
                   lr.level, lr.active, static_cast<long long>(lr.messages),
                   static_cast<long long>(lr.bytes),
                   l + 1 < run.levels.size() ? "," : "");
    }
    std::fprintf(json, "    ]}%s\n", t + 1 < truns.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_setup.json (timings read from report.json)\n");
  return 0;
}
