# Empty dependencies file for prom_partition.
# This may be replaced when dependencies are built.
