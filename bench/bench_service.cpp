// Solve-service request stream: cached vs uncached setup and the blocked
// multi-RHS solve path. The stream issues one cold request (full
// partition → assembly → mesh setup → matrix setup → solve lifecycle),
// then repeat requests against the cached hierarchy — the report parsed
// out of the obs tracer must show the setup phases absent from the warm
// window — and finally a k ∈ {1, 2, 4, 8} sweep comparing one blocked
// k-RHS request against k sequential single-RHS requests (identical
// right-hand sides, bitwise-identical answers per test_service; this
// harness measures what the shared ghost exchanges and single matrix
// traversal buy). Emits BENCH_service.json with solves/s per shape and
// the setup-amortization ratio (setup cost over one warm solve).
//
// Environment: PROM_BENCH_FULL=1 enlarges the problem; PROM_BENCH_SMOKE=1
// shrinks it (the CI smoke lane); PROM_RHS_BLOCK caps the columns per
// blocked chunk (default 8).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "app/service.h"
#include "common/rng.h"
#include "obs/report.h"
#include "obs/trace.h"

using namespace prom;

namespace {

la::MultiVec random_rhs(idx n, int k, std::uint64_t seed) {
  Rng rng(seed);
  la::MultiVec b(n, k);
  for (int j = 0; j < k; ++j) {
    for (real& v : b.col(j)) v = rng.next_real() - 0.5;
  }
  return b;
}

/// Seconds the solve phase took inside one request's tracing window.
double timed_solve(app::SolveService& service, const app::SolveRequest& req,
                   obs::Report* rep_out = nullptr) {
  const std::int64_t mark = obs::Tracer::now_ns();
  service.solve(req);
  const obs::Report rep = obs::build_report(mark);
  if (rep_out != nullptr) *rep_out = rep;
  return rep.phase_seconds("solve");
}

}  // namespace

int main() {
  const bool full = std::getenv("PROM_BENCH_FULL") != nullptr;
  const bool smoke = std::getenv("PROM_BENCH_SMOKE") != nullptr;
  const idx n = smoke ? 8 : (full ? 16 : 12);
  const int p = smoke ? 2 : 4;
  const int reps = smoke ? 1 : 3;

  app::ServiceConfig sc;
  sc.nranks = p;
  app::SolveService service(sc);
  service.register_problem("box", app::make_box_problem(n));

  obs::Tracer& tracer = obs::Tracer::instance();
  const bool was_tracing = obs::tracing();
  tracer.set_enabled(true);

  app::SolveRequest req;
  req.mesh_id = "box";
  req.return_solutions = false;

  // Cold request: the whole setup lifecycle runs inside the window.
  obs::Report cold;
  const double cold_solve_s = timed_solve(service, req, &cold);
  const double setup_s =
      cold.phase_seconds("partition") + cold.phase_seconds("fine_grid") +
      cold.phase_seconds("mesh_setup") + cold.phase_seconds("matrix_setup");

  // Warm requests: the cache must absorb the setup entirely — no setup
  // phase span may appear in a warm request's window.
  obs::Report warm;
  double warm_solve_s = timed_solve(service, req, &warm);
  for (int r = 1; r < reps; ++r) {
    warm_solve_s = std::min(warm_solve_s, timed_solve(service, req));
  }
  const bool setup_skipped = warm.phase("partition") == nullptr &&
                             warm.phase("fine_grid") == nullptr &&
                             warm.phase("mesh_setup") == nullptr &&
                             warm.phase("matrix_setup") == nullptr;
  const idx unknowns = service.acquire("box")->unknowns;

  std::printf("solve service: %d unknowns, %d ranks, cache %s setup on warm "
              "requests\n",
              unknowns, p, setup_skipped ? "skips" : "RE-RUNS (BUG)");
  std::printf("setup %.4f s, cold solve %.4f s, warm solve %.4f s "
              "(amortizes after %.1f warm solves)\n\n",
              setup_s, cold_solve_s, warm_solve_s,
              warm_solve_s > 0 ? setup_s / warm_solve_s : 0.0);

  // Blocked k-RHS request vs k sequential single-RHS requests.
  struct Row {
    int k;
    double blocked_s;
    double sequential_s;
  };
  std::vector<Row> rows;
  std::printf("%-4s | %-12s %-12s | %-14s %-14s | %-7s\n", "k", "blocked (s)",
              "seq (s)", "blocked sol/s", "seq sol/s", "speedup");
  for (const int k : {1, 2, 4, 8}) {
    const la::MultiVec rhs = random_rhs(unknowns, k, 1234 + k);
    Row row{k, 1e30, 1e30};
    for (int r = 0; r < reps; ++r) {
      app::SolveRequest blocked = req;
      blocked.rhs = rhs;
      row.blocked_s = std::min(row.blocked_s, timed_solve(service, blocked));

      const std::int64_t mark = obs::Tracer::now_ns();
      for (int j = 0; j < k; ++j) {
        app::SolveRequest single = req;
        single.rhs = la::MultiVec(unknowns, 1);
        std::copy(rhs.col(j).begin(), rhs.col(j).end(),
                  single.rhs.col(0).begin());
        service.solve(single);
      }
      row.sequential_s = std::min(
          row.sequential_s, obs::build_report(mark).phase_seconds("solve"));
    }
    rows.push_back(row);
    std::printf("%-4d | %-12.4f %-12.4f | %-14.1f %-14.1f | %-7.2f\n", k,
                row.blocked_s, row.sequential_s,
                row.blocked_s > 0 ? k / row.blocked_s : 0.0,
                row.sequential_s > 0 ? k / row.sequential_s : 0.0,
                row.blocked_s > 0 ? row.sequential_s / row.blocked_s : 0.0);
  }
  tracer.set_enabled(was_tracing);

  std::printf(
      "\nshape claim: warm requests skip the setup phases entirely (the\n"
      "hierarchy cache), and the blocked path beats k sequential solves\n"
      "because one ghost exchange per operator application serves every\n"
      "column and each matrix is traversed once per k columns — the gap\n"
      "widens with k until PROM_RHS_BLOCK splits the block into chunks.\n");

  std::FILE* json = std::fopen("BENCH_service.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_service.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"service\",\n  \"unknowns\": %d,\n"
               "  \"ranks\": %d,\n  \"setup_s\": %.6f,\n"
               "  \"cold_solve_s\": %.6f,\n  \"warm_solve_s\": %.6f,\n"
               "  \"setup_amortization_solves\": %.2f,\n"
               "  \"cached_request_skips_setup\": %s,\n  \"sweep\": [\n",
               unknowns, p, setup_s, cold_solve_s, warm_solve_s,
               warm_solve_s > 0 ? setup_s / warm_solve_s : 0.0,
               setup_skipped ? "true" : "false");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(json,
                 "    {\"k\": %d, \"blocked_s\": %.6f, \"sequential_s\": "
                 "%.6f, \"blocked_solves_per_s\": %.3f, "
                 "\"sequential_solves_per_s\": %.3f, \"speedup\": %.3f}%s\n",
                 r.k, r.blocked_s, r.sequential_s,
                 r.blocked_s > 0 ? r.k / r.blocked_s : 0.0,
                 r.sequential_s > 0 ? r.k / r.sequential_s : 0.0,
                 r.blocked_s > 0 ? r.sequential_s / r.blocked_s : 0.0,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_service.json (timings read from the obs "
              "tracer)\n");
  return setup_skipped ? 0 : 1;
}
