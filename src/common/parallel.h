// Intra-rank shared-memory execution layer (DESIGN.md: two-level
// parallelism). The paper runs on a CLUMP — a cluster of SMPs — and its
// three hot kernels (SpMV, smoother application, the Galerkin triple
// product) are exactly the ones that profit from node-level threading.
// `parx` models the cluster dimension (one thread per virtual rank); this
// layer models the SMP dimension *inside* each rank with a persistent
// thread pool driving `parallel_for` / `parallel_reduce`.
//
// Determinism contract: results are bit-identical for any kernel-thread
// count, including 1. This is achieved by making the work decomposition a
// function of the *range and grain only* — never of the thread count:
//   - `parallel_for` splits [begin, end) into fixed chunks of `grain`
//     iterations; chunks write disjoint data, so scheduling order is
//     irrelevant.
//   - `parallel_reduce` computes one partial per fixed chunk and combines
//     the partials with a deterministic balanced tree over chunk indices.
// Threads merely execute chunks; adding threads changes wall-clock time,
// never bit patterns.
//
// Thread-count policy (the `prom::common` config knob from ISSUE 1):
//   1. `set_kernel_threads(n)` — programmatic override, highest priority.
//   2. `PROM_THREADS` environment variable.
//   3. Default: `hardware_concurrency() / active_ranks`, at least 1, so
//      parx ranks sharing the machine do not oversubscribe it.
//
// Flop accounting: chunk functions may call `count_flops`, which writes a
// thread-local counter. The pool harvests every worker's delta and credits
// it to the calling thread, so `thread_flops()` keeps meaning "flops this
// rank performed" (the §6 efficiency decomposition depends on that).
#pragma once

#include <functional>

#include "common/config.h"

namespace prom::common {

/// Number of kernel threads a parallel region may use (>= 1).
int kernel_threads();

/// Programmatic override of the kernel-thread count; `n <= 0` restores the
/// default policy (PROM_THREADS env, else hardware_concurrency / ranks).
void set_kernel_threads(int n);

/// parx calls this around an SPMD region so the default thread count
/// divides the machine among ranks. `nranks <= 0` is treated as 1.
void set_active_ranks(int nranks);

/// Number of fixed chunks `[begin, end)` decomposes into under `grain`
/// (== ceil((end - begin) / grain), 0 for an empty range). Exposed so
/// callers sizing per-chunk scratch (e.g. the SpMV-transpose accumulators)
/// agree with the pool's decomposition.
idx chunk_count(idx begin, idx end, idx grain);

/// Runs `fn(chunk_begin, chunk_end)` for every fixed chunk of [begin, end).
/// Chunks may run concurrently and in any order; `fn` must only write data
/// disjoint between chunks. Bit-deterministic for any thread count.
void parallel_for(idx begin, idx end, idx grain,
                  const std::function<void(idx, idx)>& fn);

/// Deterministic reduction: `partial(chunk_begin, chunk_end)` is evaluated
/// per fixed chunk and the partials are combined with a balanced binary
/// tree over chunk indices — the same tree for every thread count.
real parallel_reduce(idx begin, idx end, idx grain,
                     const std::function<real(idx, idx)>& partial);

}  // namespace prom::common
