file(REMOVE_RECURSE
  "CMakeFiles/parallel_mis.dir/parallel_mis.cpp.o"
  "CMakeFiles/parallel_mis.dir/parallel_mis.cpp.o.d"
  "parallel_mis"
  "parallel_mis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_mis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
