// Maximal independent sets — the paper's coarsening mechanism (§4.1).
// The greedy algorithm of Figure 2 with the two refinements the paper
// layers on top:
//   * vertex *ranks* (from topological classification, §4.3–4.4): a vertex
//     of lower rank must not suppress a vertex of higher rank;
//   * *protected* top-rank vertices ("we do not allow corners to be
//     deleted at all", §4.6) — realized as processing them first.
#pragma once

#include <span>
#include <vector>

#include "common/config.h"
#include "graph/graph.h"

namespace prom::graph {

enum class MisState : std::uint8_t { kUndone = 0, kSelected = 1, kDeleted = 2 };

struct MisOptions {
  /// Per-vertex rank (empty = all rank 0). Higher rank wins: the traversal
  /// is stably sorted by decreasing rank before the greedy pass, which
  /// implements the paper's "lower rank does not suppress higher rank".
  std::span<const idx> ranks;
};

struct MisResult {
  std::vector<idx> selected;      ///< the MIS, in selection order
  std::vector<MisState> state;    ///< final state of every vertex
};

/// Greedy MIS (Figure 2) traversing vertices in `order` (a permutation of
/// 0..nv-1), honoring ranks per MisOptions.
MisResult greedy_mis(const Graph& g, std::span<const idx> order,
                     const MisOptions& opts = {});

/// Convenience: greedy MIS in natural order.
MisResult greedy_mis(const Graph& g);

}  // namespace prom::graph
