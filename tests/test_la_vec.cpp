#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/flops.h"
#include "la/vec.h"

namespace prom::la {
namespace {

TEST(Vec, Axpy) {
  std::vector<real> x = {1, 2, 3}, y = {10, 20, 30};
  axpy(2, x, y);
  EXPECT_EQ(y, (std::vector<real>{12, 24, 36}));
}

TEST(Vec, Aypx) {
  std::vector<real> x = {1, 1, 1}, y = {1, 2, 3};
  aypx(10, x, y);
  EXPECT_EQ(y, (std::vector<real>{11, 21, 31}));
}

TEST(Vec, WaxpbyAllowsAliasing) {
  std::vector<real> x = {1, 2}, y = {3, 4}, w(2);
  waxpby(2, x, -1, y, w);
  EXPECT_EQ(w, (std::vector<real>{-1, 0}));
  // w aliasing y (used by residual updates r = b - A x).
  waxpby(1, x, -1, y, y);
  EXPECT_EQ(y, (std::vector<real>{-2, -2}));
}

TEST(Vec, DotAndNorm) {
  std::vector<real> x = {3, 4};
  EXPECT_DOUBLE_EQ(dot(x, x), 25.0);
  EXPECT_DOUBLE_EQ(nrm2(x), 5.0);
}

TEST(Vec, ScaleSetCopy) {
  std::vector<real> x = {1, 2, 3};
  scale(3, x);
  EXPECT_EQ(x, (std::vector<real>{3, 6, 9}));
  std::vector<real> y(3);
  copy(x, y);
  EXPECT_EQ(y, x);
  set_all(y, 0);
  EXPECT_EQ(y, (std::vector<real>{0, 0, 0}));
  EXPECT_EQ(zeros(4), (std::vector<real>{0, 0, 0, 0}));
}

TEST(Vec, SizeMismatchThrows) {
  std::vector<real> x = {1, 2}, y = {1, 2, 3};
  EXPECT_THROW(axpy(1, x, y), Error);
  EXPECT_THROW(dot(x, y), Error);
}

TEST(Vec, FlopAccounting) {
  std::vector<real> x(100, 1.0), y(100, 2.0);
  reset_thread_flops();
  axpy(1, x, y);
  EXPECT_EQ(thread_flops(), 200);
  reset_thread_flops();
  (void)dot(x, y);
  EXPECT_EQ(thread_flops(), 200);
}

}  // namespace
}  // namespace prom::la
