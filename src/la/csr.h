// Compressed sparse row matrices — the PETSc-substitute storage used for
// stiffness matrices, restriction operators, and Galerkin coarse grid
// operators (A_coarse = R A R^T, §3 of the paper).
#pragma once

#include <span>
#include <vector>

#include "common/config.h"
#include "la/multivec.h"

namespace prom::la {

/// One (row, col, value) entry used during assembly.
struct Triplet {
  idx row;
  idx col;
  real value;
};

/// CSR sparse matrix. Column indices are sorted and unique within each row.
struct Csr {
  idx nrows = 0;
  idx ncols = 0;
  std::vector<nnz_t> rowptr;  // size nrows + 1
  std::vector<idx> colidx;    // size nnz
  std::vector<real> vals;     // size nnz

  nnz_t nnz() const { return rowptr.empty() ? 0 : rowptr.back(); }

  /// y = A x
  void spmv(std::span<const real> x, std::span<real> y) const;

  /// y += A x
  void spmv_add(std::span<const real> x, std::span<real> y) const;

  /// y = A^T x (no explicit transpose formed)
  void spmv_transpose(std::span<const real> x, std::span<real> y) const;

  /// r = b - A x, fused. Exactly the bits of spmv followed by
  /// r[i] = b[i] - y[i] (see la/backend.h on why the fusion is lossless).
  void residual(std::span<const real> b, std::span<const real> x,
                std::span<real> r) const;

  /// y[i] = (A x)[i] for the listed rows only; other entries of y are not
  /// touched. Each row accumulates exactly as in spmv, so splitting the
  /// row space across calls reproduces spmv's bits.
  void spmv_rows(std::span<const real> x, std::span<real> y,
                 std::span<const idx> rows) const;

  /// r[i] = b[i] - (A x)[i] for the listed rows only.
  void residual_rows(std::span<const real> b, std::span<const real> x,
                     std::span<real> r, std::span<const idx> rows) const;

  /// Y = A X, column-blocked. One pass over the matrix serves every
  /// column; each column accumulates in exactly spmv's order, so column j
  /// of the result is bitwise identical to spmv on X.col(j).
  void spmm(const MultiVec& x, MultiVec& y) const;

  /// R = B - A X, fused column-blocked residual (bitwise = per-column
  /// `residual`).
  void residual_mv(const MultiVec& b, const MultiVec& x, MultiVec& r) const;

  /// Column-blocked spmv_rows: Y[i] = (A X)[i] for the listed rows only.
  void spmm_rows(const MultiVec& x, MultiVec& y,
                 std::span<const idx> rows) const;

  /// Column-blocked residual_rows.
  void residual_mv_rows(const MultiVec& b, const MultiVec& x, MultiVec& r,
                        std::span<const idx> rows) const;

  /// Convenience: returns A x as a new vector.
  std::vector<real> apply(std::span<const real> x) const;

  /// Value at (i, j); 0 if the entry is not stored. O(log row length).
  real at(idx i, idx j) const;

  /// Explicit transpose.
  Csr transposed() const;

  /// Main diagonal (missing entries give 0).
  std::vector<real> diagonal() const;

  /// max_ij |A_ij - A_ji| — symmetry check for tests and assertions.
  real symmetry_error() const;

  /// Builds from triplets; duplicate (i, j) entries are summed (the finite
  /// element assembly convention).
  static Csr from_triplets(idx nrows, idx ncols,
                           std::span<const Triplet> triplets);

  static Csr identity(idx n);

  /// Dense conversion for tests and the coarsest-level direct solver.
  std::vector<real> to_dense_rowmajor() const;
};

/// C = A * B (Gustavson's algorithm).
Csr spgemm(const Csr& a, const Csr& b);

/// The Galerkin triple product R A R^T (the paper's coarse grid operator,
/// §3). R is n_coarse x n_fine, A is n_fine x n_fine.
Csr galerkin_product(const Csr& r, const Csr& a);

/// Drops stored entries with |value| <= tol (tidies coarse operators).
Csr drop_small(const Csr& a, real tol);

}  // namespace prom::la
