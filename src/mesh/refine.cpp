#include "mesh/refine.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <unordered_map>
#include <utility>

#include "common/error.h"

namespace prom::mesh {
namespace {

/// Sorted vertex pair packed into a map key.
std::uint64_t edge_key(idx u, idx v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(u)) << 32) |
         static_cast<std::uint32_t>(v);
}

/// The six vertex pairs of a tetrahedron.
constexpr std::array<std::array<int, 2>, 6> kTetEdges = {
    {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}};

/// The longest edge of the tet, ties broken by the lexicographically
/// smallest sorted vertex pair so the choice depends only on the mesh.
std::array<idx, 2> longest_edge(const std::vector<Vec3>& coords,
                                const std::array<idx, 4>& t) {
  std::array<idx, 2> best{kInvalidIdx, kInvalidIdx};
  real best_len = -1;
  for (const auto& e : kTetEdges) {
    idx u = t[e[0]], v = t[e[1]];
    if (u > v) std::swap(u, v);
    const real len = norm2(coords[v] - coords[u]);
    const bool better =
        len > best_len ||
        (len == best_len &&
         (u < best[0] || (u == best[0] && v < best[1])));
    if (better) {
      best = {u, v};
      best_len = len;
    }
  }
  return best;
}

}  // namespace

Mesh hex_to_tet(const Mesh& mesh) {
  if (mesh.kind() == CellKind::kTet4) return mesh;
  // Kuhn triangulation: six tets sharing the body diagonal local0-local6.
  // Every quad face is cut along the diagonal that touches local 0 or 6;
  // with the consistent VTK local ordering of the structured generators,
  // the two hexes sharing a face pick the same cut, so no hanging edges.
  constexpr std::array<std::array<int, 4>, 6> kKuhn = {{{0, 1, 2, 6},
                                                        {0, 2, 3, 6},
                                                        {0, 3, 7, 6},
                                                        {0, 7, 4, 6},
                                                        {0, 4, 5, 6},
                                                        {0, 5, 1, 6}}};
  const idx ne = mesh.num_cells();
  std::vector<idx> cells;
  cells.reserve(static_cast<std::size_t>(ne) * 24);
  std::vector<idx> materials;
  materials.reserve(static_cast<std::size_t>(ne) * 6);
  for (idx e = 0; e < ne; ++e) {
    const std::span<const idx> hex = mesh.cell(e);
    for (const auto& t : kKuhn) {
      for (int k = 0; k < 4; ++k) cells.push_back(hex[t[k]]);
      materials.push_back(mesh.material(e));
    }
  }
  Mesh tet(CellKind::kTet4, mesh.coords(), std::move(cells),
           std::move(materials));
  for (idx e = 0; e < tet.num_cells(); ++e) {
    PROM_CHECK_MSG(cell_volume(tet, e) > 0,
                   "hex_to_tet: inverted tet (degenerate hex?)");
  }
  return tet;
}

RefineResult refine_local(const Mesh& mesh, std::span<const idx> marked) {
  PROM_CHECK_MSG(mesh.kind() == CellKind::kTet4,
                 "refine_local requires a TET4 mesh (see hex_to_tet)");
  const idx n_in = mesh.num_cells();
  const idx nv_in = mesh.num_vertices();

  std::vector<Vec3> coords = mesh.coords();
  std::vector<std::array<idx, 4>> cells(static_cast<std::size_t>(n_in));
  std::vector<idx> ancestor(static_cast<std::size_t>(n_in));
  std::vector<char> alive(static_cast<std::size_t>(n_in), 1);
  std::vector<char> want(static_cast<std::size_t>(n_in), 0);
  for (idx e = 0; e < n_in; ++e) {
    const std::span<const idx> c = mesh.cell(e);
    cells[e] = {c[0], c[1], c[2], c[3]};
    ancestor[e] = e;
  }
  for (idx m : marked) {
    PROM_CHECK(m >= 0 && m < n_in);
    want[m] = 1;
  }

  std::unordered_map<std::uint64_t, idx> midpoint;
  std::vector<std::array<idx, 2>> vertex_parents;

  const auto bisect = [&](idx c) {
    const std::array<idx, 4> t = cells[c];
    const std::array<idx, 2> e = longest_edge(coords, t);
    const std::uint64_t key = edge_key(e[0], e[1]);
    idx m;
    const auto it = midpoint.find(key);
    if (it != midpoint.end()) {
      m = it->second;
    } else {
      m = static_cast<idx>(coords.size());
      coords.push_back((coords[e[0]] + coords[e[1]]) * real{0.5});
      vertex_parents.push_back({e[0], e[1]});
      midpoint.emplace(key, m);
    }
    std::array<idx, 4> child0 = t;
    std::array<idx, 4> child1 = t;
    for (int k = 0; k < 4; ++k) {
      if (t[k] == e[1]) child0[k] = m;  // keeps orientation: |child| = |t|/2
      if (t[k] == e[0]) child1[k] = m;
    }
    alive[c] = 0;
    cells.push_back(child0);
    cells.push_back(child1);
    ancestor.push_back(ancestor[c]);
    ancestor.push_back(ancestor[c]);
    alive.push_back(1);
    alive.push_back(1);
    want.push_back(0);
    want.push_back(0);
  };

  const auto has_hanging = [&](idx c) {
    const std::array<idx, 4>& t = cells[c];
    for (const auto& e : kTetEdges) {
      if (midpoint.count(edge_key(t[e[0]], t[e[1]])) != 0) return true;
    }
    return false;
  };

  // Bisect marked cells, then sweep until conforming: any live cell with
  // a midpoint hanging on one of its edges is bisected by its *longest*
  // edge (Rivara propagation — the hanging edge becomes the longest edge
  // of a descendant after finitely many bisections). Cells are visited in
  // id order and children are appended, so each sweep processes its own
  // cascade and the result is a pure function of (mesh, marked).
  for (int sweep = 0;; ++sweep) {
    PROM_CHECK_MSG(sweep < 200, "refine_local: closure did not terminate");
    bool progress = false;
    for (idx c = 0; c < static_cast<idx>(cells.size()); ++c) {
      if (!alive[c]) continue;
      if (want[c] || has_hanging(c)) {
        bisect(c);
        progress = true;
      }
    }
    if (!progress) break;
  }

  RefineResult out;
  out.num_parent_vertices = nv_in;
  out.vertex_parents = std::move(vertex_parents);
  out.cell_changed.assign(static_cast<std::size_t>(n_in), 0);
  for (idx c = 0; c < n_in; ++c) out.cell_changed[c] = alive[c] ? 0 : 1;

  std::vector<idx> flat;
  std::vector<idx> materials;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    if (!alive[c]) continue;
    for (int k = 0; k < 4; ++k) flat.push_back(cells[c][k]);
    materials.push_back(mesh.material(ancestor[c]));
    out.parent_cell.push_back(ancestor[c]);
  }
  out.mesh = Mesh(CellKind::kTet4, std::move(coords), std::move(flat),
                  std::move(materials));
  return out;
}

std::vector<idx> mark_fraction(std::span<const real> indicator,
                               real fraction) {
  const idx n = static_cast<idx>(indicator.size());
  if (n == 0 || fraction <= 0) return {};
  std::vector<idx> order(static_cast<std::size_t>(n));
  for (idx i = 0; i < n; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](idx a, idx b) {
    if (indicator[a] != indicator[b]) return indicator[a] > indicator[b];
    return a < b;
  });
  const idx count = std::min<idx>(
      n, std::max<idx>(1, static_cast<idx>(fraction * static_cast<real>(n) +
                                           real{0.999999})));
  order.resize(static_cast<std::size_t>(count));
  std::sort(order.begin(), order.end());
  return order;
}

bool is_conforming(const Mesh& mesh) {
  PROM_CHECK(mesh.kind() == CellKind::kTet4);
  constexpr std::array<std::array<int, 3>, 4> kFaces = {
      {{0, 1, 2}, {0, 1, 3}, {0, 2, 3}, {1, 2, 3}}};
  struct TripleHash {
    std::size_t operator()(const std::array<idx, 3>& t) const {
      std::uint64_t h = 1469598103934665603ull;
      for (idx v : t) {
        h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(v));
        h *= 1099511628211ull;
      }
      return static_cast<std::size_t>(h);
    }
  };
  std::unordered_map<std::array<idx, 3>, int, TripleHash> face_count;
  for (idx e = 0; e < mesh.num_cells(); ++e) {
    const std::span<const idx> c = mesh.cell(e);
    for (const auto& f : kFaces) {
      std::array<idx, 3> t = {c[f[0]], c[f[1]], c[f[2]]};
      std::sort(t.begin(), t.end());
      if (++face_count[t] > 2) return false;
    }
  }
  // Hanging-node check: a vertex sitting bitwise at the midpoint of a
  // cell's edge means closure failed to split that cell (midpoints are
  // computed as (a+b)/2 exactly, so the comparison is exact).
  struct PosHash {
    std::size_t operator()(const std::array<std::uint64_t, 3>& p) const {
      std::uint64_t h = 1469598103934665603ull;
      for (std::uint64_t v : p) {
        h ^= v;
        h *= 1099511628211ull;
      }
      return static_cast<std::size_t>(h);
    }
  };
  const auto pos_key = [](const Vec3& p) {
    return std::array<std::uint64_t, 3>{std::bit_cast<std::uint64_t>(p.x),
                                        std::bit_cast<std::uint64_t>(p.y),
                                        std::bit_cast<std::uint64_t>(p.z)};
  };
  std::unordered_map<std::array<std::uint64_t, 3>, idx, PosHash> at;
  for (idx v = 0; v < mesh.num_vertices(); ++v) {
    at.emplace(pos_key(mesh.coord(v)), v);
  }
  for (idx e = 0; e < mesh.num_cells(); ++e) {
    const std::span<const idx> c = mesh.cell(e);
    for (const auto& ed : kTetEdges) {
      const Vec3 mid =
          (mesh.coord(c[ed[0]]) + mesh.coord(c[ed[1]])) * real{0.5};
      const auto it = at.find(pos_key(mid));
      if (it != at.end() && it->second != c[ed[0]] &&
          it->second != c[ed[1]]) {
        return false;  // hanging vertex on this edge
      }
    }
  }
  return true;
}

}  // namespace prom::mesh
