// The thin-body scenario of Figures 4-6: on a plate one element thick,
// the plain MIS lets one surface decimate the other and the coarse grid
// loses the geometry; the feature-aware modified graph (§4.6) keeps both
// surfaces represented and improves the multigrid convergence rate.
//
// Prints MIS statistics and solver iteration counts for both variants and
// writes thin_body_mis_{plain,modified}.vtk with the selection marked.
#include <cstdio>

#include "app/driver.h"
#include "coarsen/coarsen.h"
#include "fem/assembly.h"
#include "mesh/generate.h"
#include "mesh/vtk.h"
#include "mg/hierarchy.h"
#include "mg/solver.h"

using namespace prom;

namespace {

struct VariantResult {
  idx selected_top = 0, selected_bottom = 0, selected_total = 0;
  int iterations = 0;
  bool converged = false;
};

VariantResult run_variant(bool modify_graph) {
  const real lz = 0.5;
  mesh::Mesh mesh = mesh::thin_slab(16, 16, 1, 16.0, 16.0, lz);
  // MIS statistics for this variant.
  const graph::Graph g = mesh.vertex_graph();
  const coarsen::Classification cls = coarsen::classify_mesh(mesh);
  coarsen::CoarsenOptions copts;
  copts.modify_graph = modify_graph;
  const coarsen::CoarsenLevelResult level =
      coarsen::coarsen_level(mesh.coords(), g, cls, 0, copts);

  VariantResult out;
  out.selected_total = static_cast<idx>(level.selected.size());
  std::vector<real> marker(static_cast<std::size_t>(mesh.num_vertices()), 0);
  for (idx v : level.selected) {
    marker[v] = 1;
    if (mesh.coord(v).z > lz - 1e-9) out.selected_top++;
    if (mesh.coord(v).z < 1e-9) out.selected_bottom++;
  }
  mesh::VtkFields fields;
  fields.vertex_scalar = marker;
  fields.vertex_scalar_name = "mis_selected";
  mesh::write_vtk(modify_graph ? "thin_body_mis_modified.vtk"
                               : "thin_body_mis_plain.vtk",
                  mesh, fields);

  // Multigrid solve of a bending-dominated elasticity problem on the
  // plate, using this variant's coarsening throughout the hierarchy.
  fem::DofMap dofmap(mesh.num_vertices());
  dofmap.fix_all(
      mesh.vertices_where([](const Vec3& p) { return p.x < 1e-9; }), 0.0);
  for (idx v : mesh.vertices_where(
           [](const Vec3& p) { return p.x > 16.0 - 1e-9; })) {
    dofmap.fix(v, 2, -0.2);
  }
  dofmap.finalize();
  fem::Material mat;
  fem::FeProblem problem(mesh, {mat}, dofmap);
  fem::LinearSystem sys = fem::assemble_linear_system(problem);
  mg::MgOptions mg_opts;
  mg_opts.coarsen.modify_graph = modify_graph;
  mg_opts.coarsest_max_dofs = 200;
  const mg::Hierarchy h =
      mg::Hierarchy::build(mesh, dofmap, sys.stiffness, mg_opts);
  std::vector<real> x(sys.rhs.size(), 0.0);
  mg::MgSolveOptions so;
  so.rtol = 1e-8;
  so.max_iters = 400;
  const la::KrylovResult res = mg_pcg_solve(h, sys.rhs, x, so);
  out.iterations = res.iterations;
  out.converged = res.converged;
  return out;
}

}  // namespace

int main() {
  std::printf("thin plate, one element through the thickness (Figs 4-6)\n\n");
  const VariantResult plain = run_variant(false);
  const VariantResult modified = run_variant(true);
  std::printf("%-22s %10s %10s %10s %12s\n", "MIS graph", "selected",
              "top srf", "bottom srf", "MG-PCG its");
  std::printf("%-22s %10d %10d %10d %12d%s\n", "plain (Fig 4)",
              plain.selected_total, plain.selected_top, plain.selected_bottom,
              plain.iterations, plain.converged ? "" : " (not conv.)");
  std::printf("%-22s %10d %10d %10d %12d%s\n", "modified (Figs 5-6)",
              modified.selected_total, modified.selected_top,
              modified.selected_bottom, modified.iterations,
              modified.converged ? "" : " (not conv.)");
  std::printf(
      "\nThe modified graph keeps both surfaces of the thin body in the\n"
      "coarse grid (compare the 'top srf'/'bottom srf' counts) as in\n"
      "Figure 6; wrote thin_body_mis_plain.vtk / thin_body_mis_modified.vtk\n");
  return 0;
}
