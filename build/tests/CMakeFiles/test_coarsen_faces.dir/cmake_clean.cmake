file(REMOVE_RECURSE
  "CMakeFiles/test_coarsen_faces.dir/test_coarsen_faces.cpp.o"
  "CMakeFiles/test_coarsen_faces.dir/test_coarsen_faces.cpp.o.d"
  "test_coarsen_faces"
  "test_coarsen_faces.pdb"
  "test_coarsen_faces[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coarsen_faces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
