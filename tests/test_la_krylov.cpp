#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "la/krylov.h"
#include "la/vec.h"

namespace prom::la {
namespace {

/// 1D Poisson matrix (tridiagonal 2,-1) of order n — SPD with known
/// spectrum, the classic Krylov test operator.
Csr poisson1d(idx n) {
  std::vector<Triplet> t;
  for (idx i = 0; i < n; ++i) {
    t.push_back({i, i, 2.0});
    if (i > 0) t.push_back({i, i - 1, -1.0});
    if (i + 1 < n) t.push_back({i, i + 1, -1.0});
  }
  return Csr::from_triplets(n, n, t);
}

TEST(Cg, SolvesIdentityInOneIteration) {
  const Csr eye = Csr::identity(10);
  const CsrOperator op(eye);
  std::vector<real> b(10, 3.0), x(10, 0.0);
  const KrylovResult r = cg(op, b, x);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 1);
  for (real v : x) EXPECT_NEAR(v, 3.0, 1e-12);
}

class CgPoisson : public ::testing::TestWithParam<idx> {};

TEST_P(CgPoisson, ConvergesToTrueSolution) {
  const idx n = GetParam();
  const Csr a = poisson1d(n);
  const CsrOperator op(a);
  std::vector<real> x_true(n), b(n), x(n, 0.0);
  for (idx i = 0; i < n; ++i) x_true[i] = std::cos(0.1 * i);
  a.spmv(x_true, b);
  KrylovOptions opts;
  opts.rtol = 1e-12;
  opts.max_iters = 2 * n;
  const KrylovResult r = cg(op, b, x);
  EXPECT_TRUE(r.converged);
  for (idx i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-7);
}

TEST_P(CgPoisson, FiniteTerminationProperty) {
  // Exact CG converges in at most n iterations (here: well within 2n even
  // with roundoff at rtol 1e-10).
  const idx n = GetParam();
  const Csr a = poisson1d(n);
  const CsrOperator op(a);
  std::vector<real> b(n, 1.0), x(n, 0.0);
  KrylovOptions opts;
  opts.rtol = 1e-10;
  opts.max_iters = 2 * n;
  const KrylovResult r = cg(op, b, x, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 2 * n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CgPoisson,
                         ::testing::Values(5, 16, 50, 111, 200));

TEST(Cg, ZeroRhsGivesZeroSolution) {
  const Csr a = poisson1d(8);
  const CsrOperator op(a);
  std::vector<real> b(8, 0.0), x(8, 5.0);
  const KrylovResult r = cg(op, b, x);
  EXPECT_TRUE(r.converged);
  for (real v : x) EXPECT_EQ(v, 0.0);
}

TEST(Cg, HonorsInitialGuess) {
  const Csr a = poisson1d(20);
  const CsrOperator op(a);
  std::vector<real> x_true(20, 1.0), b(20);
  a.spmv(x_true, b);
  std::vector<real> x = x_true;  // exact guess: 0 iterations
  const KrylovResult r = cg(op, b, x);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0);
}

TEST(Cg, BreakdownFlaggedOnIndefiniteOperator) {
  std::vector<Triplet> t = {{0, 0, 1.0}, {1, 1, -1.0}};
  const Csr a = Csr::from_triplets(2, 2, t);
  const CsrOperator op(a);
  std::vector<real> b = {0.0, 1.0}, x = {0.0, 0.0};
  const KrylovResult r = cg(op, b, x);
  EXPECT_TRUE(r.breakdown);
  EXPECT_FALSE(r.converged);
}

TEST(Pcg, JacobiPreconditionerAcceleratesScaledSystem) {
  // Badly scaled diagonal system: unpreconditioned CG needs many
  // iterations; Jacobi-preconditioned CG converges immediately.
  const idx n = 60;
  std::vector<Triplet> t;
  for (idx i = 0; i < n; ++i) t.push_back({i, i, std::pow(10.0, i % 7)});
  const Csr a = Csr::from_triplets(n, n, t);
  const CsrOperator op(a);

  class DiagInv final : public LinearOperator {
   public:
    explicit DiagInv(const Csr& a) : d_(a.diagonal()) {
      for (real& v : d_) v = 1 / v;
    }
    idx rows() const override { return static_cast<idx>(d_.size()); }
    idx cols() const override { return rows(); }
    void apply(std::span<const real> x, std::span<real> y) const override {
      for (std::size_t i = 0; i < d_.size(); ++i) y[i] = d_[i] * x[i];
    }

   private:
    std::vector<real> d_;
  } precond(a);

  std::vector<real> b(n, 1.0);
  KrylovOptions opts;
  opts.rtol = 1e-10;

  std::vector<real> x1(n, 0.0);
  const KrylovResult plain = cg(op, b, x1, opts);
  std::vector<real> x2(n, 0.0);
  const KrylovResult pre = pcg(op, precond, b, x2, opts);
  EXPECT_TRUE(pre.converged);
  EXPECT_LT(pre.iterations, plain.iterations);
  EXPECT_LE(pre.iterations, 2);
}

TEST(Pcg, HistoryTracksMonotoneTailConvergence) {
  const Csr a = poisson1d(40);
  const CsrOperator op(a);
  const IdentityOperator eye(40);
  std::vector<real> b(40, 1.0), x(40, 0.0);
  KrylovOptions opts;
  opts.rtol = 1e-10;
  opts.track_history = true;
  const KrylovResult r = pcg(op, eye, b, x, opts);
  ASSERT_TRUE(r.converged);
  ASSERT_GE(r.history.size(), 2u);
  // First entry is ||b||, final entry meets the tolerance.
  EXPECT_DOUBLE_EQ(r.history.front(), nrm2(b));
  EXPECT_LE(r.history.back() / r.history.front(), opts.rtol);
}

}  // namespace
}  // namespace prom::la
