# Empty compiler generated dependencies file for prom_parx.
# This may be replaced when dependencies are built.
