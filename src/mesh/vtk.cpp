#include "mesh/vtk.h"

#include <cstdio>
#include <fstream>

#include "common/error.h"

namespace prom::mesh {

bool write_vtk(const std::string& path, const Mesh& mesh,
               const VtkFields& fields) {
  std::ofstream out(path);
  if (!out) return false;

  const idx nv = mesh.num_vertices();
  const idx nc = mesh.num_cells();
  const int npc = nodes_per_cell(mesh.kind());
  const int vtk_type = mesh.kind() == CellKind::kHex8 ? 12 : 10;

  out << "# vtk DataFile Version 3.0\n"
      << "prometheus-repro mesh\n"
      << "ASCII\n"
      << "DATASET UNSTRUCTURED_GRID\n";
  out << "POINTS " << nv << " double\n";
  for (idx v = 0; v < nv; ++v) {
    const Vec3& p = mesh.coord(v);
    out << p.x << " " << p.y << " " << p.z << "\n";
  }
  out << "CELLS " << nc << " " << static_cast<nnz_t>(nc) * (npc + 1) << "\n";
  for (idx e = 0; e < nc; ++e) {
    out << npc;
    for (idx v : mesh.cell(e)) out << " " << v;
    out << "\n";
  }
  out << "CELL_TYPES " << nc << "\n";
  for (idx e = 0; e < nc; ++e) out << vtk_type << "\n";

  out << "CELL_DATA " << nc << "\n"
      << "SCALARS material int 1\nLOOKUP_TABLE default\n";
  for (idx e = 0; e < nc; ++e) out << mesh.material(e) << "\n";

  const bool has_disp =
      !fields.displacement.empty() &&
      fields.displacement.size() == static_cast<std::size_t>(nv) * 3;
  const bool has_scalar =
      !fields.vertex_scalar.empty() &&
      fields.vertex_scalar.size() == static_cast<std::size_t>(nv);
  if (has_disp || has_scalar) {
    out << "POINT_DATA " << nv << "\n";
    if (has_disp) {
      out << "VECTORS displacement double\n";
      for (idx v = 0; v < nv; ++v) {
        out << fields.displacement[3 * v] << " "
            << fields.displacement[3 * v + 1] << " "
            << fields.displacement[3 * v + 2] << "\n";
      }
    }
    if (has_scalar) {
      out << "SCALARS " << fields.vertex_scalar_name
          << " double 1\nLOOKUP_TABLE default\n";
      for (idx v = 0; v < nv; ++v) out << fields.vertex_scalar[v] << "\n";
    }
  }
  return static_cast<bool>(out);
}

}  // namespace prom::mesh
