#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "fem/material.h"

namespace prom::fem {
namespace {

Mat3 apply_tangent(const Tangent& c, const Mat3& e) {
  Mat3 s = Mat3::zero();
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      for (int k = 0; k < 3; ++k) {
        for (int l = 0; l < 3; ++l) {
          s(i, j) += tangent_at(c, i, j, k, l) * e(k, l);
        }
      }
    }
  }
  return s;
}

TEST(Material, DerivedModuli) {
  Material m;
  m.youngs = 210;
  m.poisson = 0.3;
  EXPECT_NEAR(m.mu(), 210 / 2.6, 1e-10);
  EXPECT_NEAR(m.lambda(), 210 * 0.3 / (1.3 * 0.4), 1e-10);
  EXPECT_NEAR(m.bulk(), 210 / (3 * 0.4), 1e-10);
}

TEST(Material, PaperTable1Values) {
  const Material soft = Material::paper_soft();
  EXPECT_DOUBLE_EQ(soft.youngs, 1e-4);
  EXPECT_DOUBLE_EQ(soft.poisson, 0.49);
  EXPECT_EQ(soft.model, MaterialModel::kNeoHookean);
  const Material hard = Material::paper_hard();
  EXPECT_DOUBLE_EQ(hard.youngs, 1.0);
  EXPECT_DOUBLE_EQ(hard.poisson, 0.3);
  EXPECT_DOUBLE_EQ(hard.yield_stress, 0.001);
  EXPECT_DOUBLE_EQ(hard.hardening, 0.002);
}

TEST(ElasticTangent, SymmetriesAndIsotropy) {
  Material m;
  Tangent c;
  elastic_tangent(m, c);
  Rng rng(1);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      for (int k = 0; k < 3; ++k) {
        for (int l = 0; l < 3; ++l) {
          // Minor and major symmetries.
          EXPECT_DOUBLE_EQ(tangent_at(c, i, j, k, l),
                           tangent_at(c, j, i, k, l));
          EXPECT_DOUBLE_EQ(tangent_at(c, i, j, k, l),
                           tangent_at(c, k, l, i, j));
        }
      }
    }
  }
  // Hydrostatic response: C : I = 3K I.
  const Mat3 p = apply_tangent(c, Mat3::identity());
  EXPECT_NEAR(p(0, 0), 3 * m.bulk(), 1e-12);
  EXPECT_NEAR(p(0, 1), 0.0, 1e-14);
}

TEST(ElasticTangent, UniaxialStressRecoversYoungs) {
  // Pure uniaxial strain with lateral contraction -nu*e gives stress
  // sigma_xx = E*e and zero lateral stress.
  Material m;
  m.youngs = 2.5;
  m.poisson = 0.3;
  Tangent c;
  elastic_tangent(m, c);
  const real e = 0.01;
  Mat3 strain = Mat3::zero();
  strain(0, 0) = e;
  strain(1, 1) = strain(2, 2) = -m.poisson * e;
  const Mat3 stress = apply_tangent(c, strain);
  EXPECT_NEAR(stress(0, 0), m.youngs * e, 1e-12);
  EXPECT_NEAR(stress(1, 1), 0.0, 1e-12);
  EXPECT_NEAR(stress(2, 2), 0.0, 1e-12);
}

TEST(J2, ElasticBelowYield) {
  const Material m = Material::paper_hard();
  J2State committed, updated;
  Mat3 strain = Mat3::zero();
  strain(0, 1) = strain(1, 0) = 1e-5;  // well below yield
  Mat3 stress;
  Tangent c;
  EXPECT_FALSE(j2_radial_return(m, strain, committed, updated, stress, c));
  EXPECT_NEAR(stress(0, 1), 2 * m.mu() * 1e-5, 1e-15);
  EXPECT_EQ(updated.eq_plastic, 0.0);
}

TEST(J2, YieldSurfaceRespectedAfterReturn) {
  // Large shear strain: the returned stress must lie on the yield surface
  // ||dev(sigma) - back|| = sqrt(2/3) sigma_y.
  const Material m = Material::paper_hard();
  J2State committed, updated;
  Mat3 strain = Mat3::zero();
  strain(0, 1) = strain(1, 0) = 0.01;
  Mat3 stress;
  Tangent c;
  EXPECT_TRUE(j2_radial_return(m, strain, committed, updated, stress, c));
  const Mat3 xi = deviator(stress) - updated.backstress;
  EXPECT_NEAR(frobenius_norm(xi), std::sqrt(2.0 / 3.0) * m.yield_stress,
              1e-12);
  EXPECT_GT(updated.eq_plastic, 0.0);
  EXPECT_TRUE(updated.has_yielded());
}

TEST(J2, PurelyVolumetricStrainNeverYields) {
  const Material m = Material::paper_hard();
  J2State committed, updated;
  const Mat3 strain = Mat3::identity() * 0.5;  // huge but hydrostatic
  Mat3 stress;
  Tangent c;
  EXPECT_FALSE(j2_radial_return(m, strain, committed, updated, stress, c));
  EXPECT_NEAR(stress(0, 0), m.bulk() * 1.5, 1e-12);
}

TEST(J2, KinematicHardeningShiftsYieldSurface) {
  // Load plastically in +shear, unload, reload in -shear: the backstress
  // makes reverse yielding occur earlier (Bauschinger effect).
  const Material m = Material::paper_hard();
  J2State virgin, loaded;
  Mat3 strain = Mat3::zero();
  strain(0, 1) = strain(1, 0) = 0.01;
  Mat3 stress;
  Tangent c;
  ASSERT_TRUE(j2_radial_return(m, strain, virgin, loaded, stress, c));
  EXPECT_GT(frobenius_norm(loaded.backstress), 0.0);

  // From the hardened state, a reversed strain of the same magnitude
  // produces a *larger* trial overshoot than from the virgin state.
  J2State after_reverse;
  Mat3 rev = Mat3::zero();
  rev(0, 1) = rev(1, 0) = -0.01;
  Mat3 stress_rev;
  ASSERT_TRUE(
      j2_radial_return(m, rev, loaded, after_reverse, stress_rev, c));
  EXPECT_GT(after_reverse.eq_plastic, loaded.eq_plastic);
}

TEST(J2, ConsistentTangentMatchesFiniteDifference) {
  const Material m = Material::paper_hard();
  J2State committed;  // virgin
  Mat3 strain = Mat3::zero();
  strain(0, 1) = strain(1, 0) = 0.008;
  strain(0, 0) = 0.003;
  J2State updated;
  Mat3 stress;
  Tangent c;
  ASSERT_TRUE(j2_radial_return(m, strain, committed, updated, stress, c));
  const real h = 1e-7;
  for (int k = 0; k < 3; ++k) {
    for (int l = 0; l < 3; ++l) {
      Mat3 sp = strain, sm = strain;
      sp(k, l) += h / 2;
      sp(l, k) += h / 2;
      sm(k, l) -= h / 2;
      sm(l, k) -= h / 2;
      J2State tmp;
      Mat3 stress_p, stress_m;
      Tangent dummy;
      j2_radial_return(m, sp, committed, tmp, stress_p, dummy);
      j2_radial_return(m, sm, committed, tmp, stress_m, dummy);
      for (int i = 0; i < 3; ++i) {
        for (int j = 0; j < 3; ++j) {
          const real fd = (stress_p(i, j) - stress_m(i, j)) / (2 * h);
          // The symmetrized perturbation divided by 2h isolates C_ijkl
          // (minor symmetry folds the (l,k) term into the step size).
          EXPECT_NEAR(fd, tangent_at(c, i, j, k, l), 2e-4 * m.youngs)
              << i << j << k << l;
        }
      }
    }
  }
}

TEST(NeoHookean, StressFreeAtIdentity) {
  const Material m = Material::paper_soft();
  Mat3 p;
  Tangent a;
  neo_hookean_stress(m, Mat3::identity(), p, a);
  EXPECT_NEAR(frobenius_norm(p), 0.0, 1e-18);
}

TEST(NeoHookean, TangentMatchesFiniteDifference) {
  Material m;
  m.model = MaterialModel::kNeoHookean;
  m.youngs = 1.0;
  m.poisson = 0.3;
  Rng rng(9);
  Mat3 f = Mat3::identity();
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) f(i, j) += 0.15 * (rng.next_real() - 0.5);
  }
  Mat3 p;
  Tangent a;
  neo_hookean_stress(m, f, p, a);
  const real h = 1e-7;
  for (int k = 0; k < 3; ++k) {
    for (int l = 0; l < 3; ++l) {
      Mat3 fp = f, fm = f;
      fp(k, l) += h;
      fm(k, l) -= h;
      Mat3 pp, pm;
      Tangent dummy;
      neo_hookean_stress(m, fp, pp, dummy);
      neo_hookean_stress(m, fm, pm, dummy);
      for (int i = 0; i < 3; ++i) {
        for (int j = 0; j < 3; ++j) {
          const real fd = (pp(i, j) - pm(i, j)) / (2 * h);
          EXPECT_NEAR(fd, tangent_at(a, i, j, k, l), 1e-5) << i << j << k << l;
        }
      }
    }
  }
}

TEST(NeoHookean, InvertedDeformationThrows) {
  const Material m = Material::paper_soft();
  Mat3 f = Mat3::identity();
  f(0, 0) = -1;
  Mat3 p;
  Tangent a;
  EXPECT_THROW(neo_hookean_stress(m, f, p, a), Error);
}

TEST(NeoHookean, SmallStrainLimitMatchesLinearElasticity) {
  Material m;
  m.model = MaterialModel::kNeoHookean;
  m.youngs = 1.0;
  m.poisson = 0.3;
  const real e = 1e-6;
  Mat3 f = Mat3::identity();
  f(0, 0) += e;
  Mat3 p;
  Tangent a;
  neo_hookean_stress(m, f, p, a);
  // P ~= lambda*tr(eps) I + 2 mu eps for infinitesimal strains.
  EXPECT_NEAR(p(0, 0), (m.lambda() + 2 * m.mu()) * e, 1e-11);
  EXPECT_NEAR(p(1, 1), m.lambda() * e, 1e-11);
}

}  // namespace
}  // namespace prom::fem
