// Legacy-ASCII VTK writer, enough to inspect meshes, material layouts,
// grid hierarchies (Fig 7) and displacement fields in ParaView.
#pragma once

#include <span>
#include <string>

#include "common/config.h"
#include "mesh/mesh.h"

namespace prom::mesh {

struct VtkFields {
  /// Optional per-vertex displacement (3 components per vertex).
  std::span<const real> displacement;
  /// Optional per-vertex scalar (e.g. MIS selection flag, vertex rank).
  std::span<const real> vertex_scalar;
  std::string vertex_scalar_name = "scalar";
};

/// Writes `mesh` (with material ids as cell data) to `path`. Returns false
/// on I/O failure.
bool write_vtk(const std::string& path, const Mesh& mesh,
               const VtkFields& fields = {});

}  // namespace prom::mesh
