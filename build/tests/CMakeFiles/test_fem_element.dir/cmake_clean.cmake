file(REMOVE_RECURSE
  "CMakeFiles/test_fem_element.dir/test_fem_element.cpp.o"
  "CMakeFiles/test_fem_element.dir/test_fem_element.cpp.o.d"
  "test_fem_element"
  "test_fem_element.pdb"
  "test_fem_element[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fem_element.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
