# Empty compiler generated dependencies file for test_coarsen_faces.
# This may be replaced when dependencies are built.
