// Multigrid cycles: the V-cycle of Figure 1 and the full multigrid (FMG)
// cycle the paper uses in its numerical experiments ("one full multigrid
// cycle applies the V-cycle to each grid, starting with the coarsest").
#pragma once

#include <span>
#include <vector>

#include "common/config.h"
#include "mg/hierarchy.h"

namespace prom::mg {

/// One V-cycle at `level` for A_level x = b, improving x in place
/// (Figure 1 of the paper: pre-smooth, restrict residual, recurse,
/// prolongate correction, post-smooth; direct solve on the coarsest grid).
void vcycle(const Hierarchy& h, int level, std::span<const real> b,
            std::span<real> x);

/// One full multigrid cycle for A_0 x = b starting from zero; returns x.
std::vector<real> fmg_cycle(const Hierarchy& h, std::span<const real> b);

}  // namespace prom::mg
